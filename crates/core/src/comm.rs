//! The Nemesis communication engine: eager protocol, rendezvous, the LMT
//! interface and the polling progress loop.
//!
//! Protocol summary (§2):
//!
//! * Messages up to `eager_max` (64 KiB by default) are **eager**: the
//!   sender copies the payload into shared cells and enqueues an envelope
//!   on the receiver's queue; the receiver copies the cells out — two
//!   copies, but no handshake.
//! * Larger messages use **rendezvous**: an RTS envelope announces the
//!   message; the data then flows through the configured LMT backend:
//!
//!   | backend | copies | mechanism |
//!   |---|---|---|
//!   | `ShmCopy` | 2 | double-buffered shared copy ring (§2) |
//!   | `PipeWritev` | 2 | pipe, `writev` + `readv` (§3.1 baseline) |
//!   | `Vmsplice` | 1 | pipe, `vmsplice` + `readv` (§3.1) |
//!   | `Knem(..)` | 1 (or 0 CPU copies with I/OAT) | KNEM cookies (§3.2) |
//!
//! All transfer work happens in bounded steps inside [`Comm::progress`],
//! so sends, receives and collective phases overlap exactly as they do in
//! the real polling-based implementation.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use nemesis_kernel::{BufId, Iov, KnemFlags, Os, StatusId};
use nemesis_sim::{Proc, Ps};

use crate::config::{KnemSelect, LmtSelect, NemesisConfig};
use crate::shm::{Envelope, LmtWire, PairPipe, PktKind, Ring, ShmSegment, ShmState};
use crate::vector::{unpack, VectorLayout};

/// Virtual-time watchdog: a blocking call that exceeds this much simulated
/// time aborts the run (almost certainly an application deadlock).
const WATCHDOG_PS: Ps = 200_000_000_000_000; // 200 simulated seconds

/// Handle to an outstanding operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request(usize);

/// Metadata of a probed message (the `MPI_Status` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageInfo {
    pub src: usize,
    pub tag: i32,
    pub len: u64,
}

/// Tag wildcard.
pub const ANY_TAG: Option<i32> = None;
/// Source wildcard.
pub const ANY_SOURCE: Option<usize> = None;

/// The shared communication universe: one per simulation.
pub struct Nemesis {
    os: Arc<Os>,
    cfg: NemesisConfig,
    nprocs: usize,
    seg: ShmSegment,
    sh: Mutex<ShmState>,
    /// Core each rank runs on, learned at [`Nemesis::attach`] time (the
    /// dynamic LMT policy consults the pair's cache-sharing relation).
    cores: Mutex<Vec<Option<usize>>>,
}

impl Nemesis {
    /// Build the universe (allocates the shared segment). Call before
    /// `run_simulation`; each process then calls [`Nemesis::attach`].
    pub fn new(os: Arc<Os>, nprocs: usize, cfg: NemesisConfig) -> Arc<Self> {
        let (seg, state) = ShmSegment::new(&os, nprocs, &cfg);
        Arc::new(Self {
            os,
            cfg,
            nprocs,
            seg,
            sh: Mutex::new(state),
            cores: Mutex::new(vec![None; nprocs]),
        })
    }

    pub fn os(&self) -> &Arc<Os> {
        &self.os
    }

    pub fn cfg(&self) -> &NemesisConfig {
        &self.cfg
    }

    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Attach the calling simulated process, producing its endpoint.
    pub fn attach<'a>(self: &Arc<Self>, p: &'a Proc) -> Comm<'a> {
        assert!(p.pid() < self.nprocs, "pid outside communicator");
        self.cores.lock()[p.pid()] = Some(p.core());
        Comm {
            p,
            nem: Arc::clone(self),
            inner: RefCell::new(CommInner::default()),
            concurrency: Cell::new(1),
            coll_seq: Cell::new(0),
            scratch: Cell::new(None),
        }
    }

    /// Resolve the §3.5 blended policy for a `len`-byte transfer from
    /// `src_core` to rank `dst`:
    ///
    /// * cache-sharing pairs take the two-copy ring (where §4.1/§4.2
    ///   show it wins) — except past `DMAmin`, where KNEM's I/OAT
    ///   offload stops polluting the shared cache and wins even there;
    /// * everyone else takes the best available single-copy backend
    ///   (KNEM if the module is loaded, else vmsplice, else the ring).
    ///
    /// An unattached destination (its core unknown yet) is treated as
    /// not sharing a cache — the conservative direction, since
    /// single-copy never loses badly.
    fn dynamic_backend(&self, src_core: usize, dst: usize, len: u64) -> LmtSelect {
        let topo = &self.os.machine().cfg().topology;
        let shared = match self.cores.lock()[dst] {
            Some(dst_core) => matches!(
                topo.placement(src_core, dst_core),
                nemesis_sim::topology::Placement::SameCore
                    | nemesis_sim::topology::Placement::SharedL2
                    | nemesis_sim::topology::Placement::SharedL3
            ),
            None => false,
        };
        if shared && (!self.cfg.knem_available || len < self.cfg.dma_min(self.os.machine(), 1)) {
            LmtSelect::ShmCopy
        } else if self.cfg.knem_available {
            LmtSelect::Knem(KnemSelect::Auto)
        } else if self.cfg.vmsplice_available && !shared {
            LmtSelect::Vmsplice
        } else {
            LmtSelect::ShmCopy
        }
    }

    /// Lazily create (or fetch) the copy ring for `(src, dst)`.
    fn ring_key(&self, src: usize, dst: usize) -> (usize, usize) {
        (src, dst)
    }

    fn ensure_ring(&self, src: usize, dst: usize) {
        let key = self.ring_key(src, dst);
        let mut sh = self.sh.lock();
        sh.rings.entry(key).or_insert_with(|| Ring {
            bufs: (0..self.cfg.ring_bufs)
                .map(|_| self.os.alloc_shared(self.cfg.ring_chunk))
                .collect(),
            flags_buf: self.os.alloc_shared(self.cfg.ring_bufs as u64 * 64),
            fill: vec![0; self.cfg.ring_bufs],
            owner: None,
        });
    }

    fn ensure_pipe(&self, src: usize, dst: usize) -> nemesis_kernel::PipeId {
        let key = (src, dst);
        {
            let sh = self.sh.lock();
            if let Some(pp) = sh.pipes.get(&key) {
                return pp.pipe;
            }
        }
        // Create outside the lock (pipe_create takes the OS lock).
        let pipe = self.os.pipe_create();
        let mut sh = self.sh.lock();
        sh.pipes
            .entry(key)
            .or_insert(PairPipe {
                pipe,
                busy_parties: 0,
            })
            .pipe
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqState {
    Active,
    Done,
}

struct PostedRecv {
    req: usize,
    src: Option<usize>,
    tag: Option<i32>,
    buf: BufId,
    off: u64,
    cap: u64,
    /// Noncontiguous receive layout (`None` = contiguous at `off`).
    layout: Option<VectorLayout>,
}

struct SendRndv {
    req: usize,
    msg_id: u64,
    dst: usize,
    buf: BufId,
    off: u64,
    len: u64,
    state: SendState,
    done: bool,
    /// Pack staging for noncontiguous sends over scatter-blind wires
    /// (shm ring, pipes); recycled into the tmp pool on completion.
    staging: Option<(u64, BufId)>,
}

enum SendState {
    /// Waiting to acquire the pair's copy ring.
    ShmAcquire,
    ShmActive {
        sent: u64,
        next_slot: usize,
    },
    /// Waiting to acquire the pair's pipe.
    PipeAcquire {
        vmsplice: bool,
        pipe: nemesis_kernel::PipeId,
    },
    PipeActive {
        written: u64,
        vmsplice: bool,
        pipe: nemesis_kernel::PipeId,
    },
    /// vmsplice gift semantics: wait for the receiver to drain our pages.
    PipeDrain {
        pipe: nemesis_kernel::PipeId,
    },
    /// KNEM: wait for the receiver's DONE.
    KnemWait,
}

struct RecvRndv {
    req: usize,
    src: usize,
    msg_id: u64,
    buf: BufId,
    off: u64,
    len: u64,
    wire: LmtWire,
    concurrency: u32,
    state: RecvState,
    done: bool,
    /// Noncontiguous receive layout. KNEM consumes it directly as the
    /// receive iovec (single-copy scatter); other wires receive into
    /// `staging` and unpack on completion.
    layout: Option<VectorLayout>,
    /// Unpack staging: `(capacity, buffer, user_buf)` — the wire writes
    /// into `buf`/`off` which point at the staging buffer; `user_buf` is
    /// the real destination for the final unpack.
    staging: Option<(u64, BufId, BufId)>,
}

enum RecvState {
    ShmActive { recvd: u64, next_slot: usize },
    PipeActive { read: u64 },
    KnemIssue,
    KnemPoll { status: StatusId },
}

/// A matched receive whose fragmented eager payload is still streaming
/// in (the message was larger than the sender's cell pool).
struct EagerInflight {
    src: usize,
    msg_id: u64,
    req: usize,
    /// Destination segments (user buffer blocks).
    dst: Vec<(BufId, u64, u64)>,
    total: u64,
    received: u64,
}

#[derive(Default)]
struct CommInner {
    reqs: Vec<ReqState>,
    posted: Vec<PostedRecv>,
    unexpected: VecDeque<Envelope>,
    sends: Vec<SendRndv>,
    recvs: Vec<RecvRndv>,
    eager_in: Vec<EagerInflight>,
    next_msg_id: u64,
    status_pool: Vec<StatusId>,
    /// Recycled temporary buffers for unexpected eager payloads, keyed by
    /// capacity (see [`Comm::buffer_unexpected`]).
    tmp_pool: Vec<(u64, BufId)>,
}

/// The byte sub-range `[skip, skip+take)` of a segment list.
fn segs_slice(segs: &[(BufId, u64, u64)], skip: u64, take: u64) -> Vec<(BufId, u64, u64)> {
    let mut out = Vec::new();
    let mut pos = 0u64;
    let mut rem = take;
    for &(b, o, l) in segs {
        if rem == 0 {
            break;
        }
        let seg_end = pos + l;
        if seg_end <= skip {
            pos = seg_end;
            continue;
        }
        let from = skip.max(pos);
        let n = (seg_end - from).min(rem);
        out.push((b, o + (from - pos), n));
        rem -= n;
        pos = seg_end;
    }
    debug_assert_eq!(rem, 0, "segment list shorter than skip+take");
    out
}

/// A process's endpoint into the Nemesis universe.
pub struct Comm<'a> {
    p: &'a Proc,
    nem: Arc<Nemesis>,
    inner: RefCell<CommInner>,
    /// Concurrency hint attached to outgoing RTS packets (set by the
    /// collective layer when `collective_hint` is enabled).
    concurrency: Cell<u32>,
    /// Collective sequence number (disambiguates internal tags).
    pub(crate) coll_seq: Cell<i32>,
    /// Lazily-allocated one-page scratch buffer (barrier tokens etc.).
    pub(crate) scratch: Cell<Option<BufId>>,
}

impl<'a> Comm<'a> {
    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.p.pid()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.nem.nprocs
    }

    /// The simulated process handle.
    pub fn proc(&self) -> &'a Proc {
        self.p
    }

    /// The OS (for buffer management).
    pub fn os(&self) -> &Arc<Os> {
        self.nem.os()
    }

    /// The universe's configuration.
    pub fn config(&self) -> &NemesisConfig {
        self.nem.cfg()
    }

    /// Set the collective concurrency hint for subsequent sends (§6).
    pub fn set_concurrency_hint(&self, n: u32) {
        self.concurrency.set(n.max(1));
    }

    fn new_req(&self, state: ReqState) -> usize {
        let mut inner = self.inner.borrow_mut();
        inner.reqs.push(state);
        inner.reqs.len() - 1
    }

    // ------------------------------------------------------------------
    // Point-to-point API
    // ------------------------------------------------------------------

    /// Non-blocking send of `buf[off..off+len]` to `dst` with `tag`.
    pub fn isend(&self, dst: usize, tag: i32, buf: BufId, off: u64, len: u64) -> Request {
        assert!(dst < self.size(), "invalid destination rank {dst}");
        assert_ne!(dst, self.rank(), "self-send must use sendrecv_self");
        if len <= self.nem.cfg.eager_max {
            self.eager_send(dst, tag, &[(buf, off, len)], len);
            Request(self.new_req(ReqState::Done))
        } else {
            self.rndv_send(dst, tag, buf, off, len)
        }
    }

    /// Non-blocking noncontiguous ("vectorial") send: the strided blocks
    /// of `layout` within `buf` form the message payload. KNEM transfers
    /// them in a single scatter-to-scatter copy; the byte-stream LMTs
    /// pack into a staging buffer first (MPICH2's dataloop path).
    pub fn isendv(&self, dst: usize, tag: i32, buf: BufId, layout: &VectorLayout) -> Request {
        assert!(dst < self.size(), "invalid destination rank {dst}");
        assert_ne!(dst, self.rank(), "self-send must use sendrecv_self");
        let len = layout.total();
        if layout.is_contiguous() {
            return self.isend(dst, tag, buf, layout.off, len);
        }
        if len <= self.nem.cfg.eager_max {
            let src: Vec<(BufId, u64, u64)> = layout
                .blocks()
                .into_iter()
                .map(|(o, n)| (buf, o, n))
                .collect();
            self.eager_send(dst, tag, &src, len);
            return Request(self.new_req(ReqState::Done));
        }
        let backend = match self.nem.cfg.lmt {
            LmtSelect::Dynamic => self.nem.dynamic_backend(self.p.core(), dst, len),
            fixed => fixed,
        };
        if matches!(backend, LmtSelect::Knem(_)) {
            return self.rndv_send_iovs(dst, tag, &layout.iovs(buf), len);
        }
        // Scatter-blind wire: pack into staging, send staging, recycle on
        // completion.
        let (cap, stage) = self.tmp_acquire(len);
        crate::vector::pack(&self.nem.os, self.p, buf, layout, stage, 0);
        let req = self.rndv_send(dst, tag, stage, 0, len);
        self.inner
            .borrow_mut()
            .sends
            .iter_mut()
            .rfind(|s| s.req == req.0)
            .expect("send just pushed")
            .staging = Some((cap, stage));
        req
    }

    /// Blocking noncontiguous send.
    pub fn sendv(&self, dst: usize, tag: i32, buf: BufId, layout: &VectorLayout) {
        let r = self.isendv(dst, tag, buf, layout);
        self.wait(r);
    }

    /// Non-blocking noncontiguous receive into the blocks of `layout`.
    pub fn irecvv(
        &self,
        src: Option<usize>,
        tag: Option<i32>,
        buf: BufId,
        layout: &VectorLayout,
    ) -> Request {
        if layout.is_contiguous() {
            return self.irecv(src, tag, buf, layout.off, layout.total());
        }
        self.irecv_inner(src, tag, buf, layout.off, layout.total(), Some(*layout))
    }

    /// Blocking noncontiguous receive.
    pub fn recvv(&self, src: Option<usize>, tag: Option<i32>, buf: BufId, layout: &VectorLayout) {
        let r = self.irecvv(src, tag, buf, layout);
        self.wait(r);
    }

    /// Non-blocking receive into `buf[off..off+cap]`.
    pub fn irecv(
        &self,
        src: Option<usize>,
        tag: Option<i32>,
        buf: BufId,
        off: u64,
        cap: u64,
    ) -> Request {
        self.irecv_inner(src, tag, buf, off, cap, None)
    }

    fn irecv_inner(
        &self,
        src: Option<usize>,
        tag: Option<i32>,
        buf: BufId,
        off: u64,
        cap: u64,
        layout: Option<VectorLayout>,
    ) -> Request {
        let req = self.new_req(ReqState::Active);
        // Try the unexpected queue first (in arrival order).
        let matched = {
            let mut inner = self.inner.borrow_mut();
            let pos = inner
                .unexpected
                .iter()
                .position(|e| Self::env_matches(e, src, tag) && Self::env_ready(e));
            pos.map(|i| inner.unexpected.remove(i).unwrap())
        };
        match matched {
            Some(env) => self.deliver_any(env, req, buf, off, cap, layout),
            None => self.inner.borrow_mut().posted.push(PostedRecv {
                req,
                src,
                tag,
                buf,
                off,
                cap,
                layout,
            }),
        }
        Request(req)
    }

    /// Blocking send.
    pub fn send(&self, dst: usize, tag: i32, buf: BufId, off: u64, len: u64) {
        let r = self.isend(dst, tag, buf, off, len);
        self.wait(r);
    }

    /// Blocking receive.
    pub fn recv(&self, src: Option<usize>, tag: Option<i32>, buf: BufId, off: u64, cap: u64) {
        let r = self.irecv(src, tag, buf, off, cap);
        self.wait(r);
    }

    /// Concurrent send+receive (the collective workhorse).
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        dst: usize,
        stag: i32,
        sbuf: BufId,
        soff: u64,
        slen: u64,
        src: Option<usize>,
        rtag: Option<i32>,
        rbuf: BufId,
        roff: u64,
        rcap: u64,
    ) {
        let r = self.irecv(src, rtag, rbuf, roff, rcap);
        let s = self.isend(dst, stag, sbuf, soff, slen);
        self.wait(r);
        self.wait(s);
    }

    /// Has the request completed? (Drives progress once.)
    pub fn test(&self, r: Request) -> bool {
        self.progress();
        self.inner.borrow().reqs[r.0] == ReqState::Done
    }

    /// Non-blocking probe: is there a matching message (eager payload or
    /// rendezvous announcement) waiting that no posted receive claims?
    /// Returns its envelope metadata without consuming it.
    pub fn iprobe(&self, src: Option<usize>, tag: Option<i32>) -> Option<MessageInfo> {
        self.progress();
        let inner = self.inner.borrow();
        inner
            .unexpected
            .iter()
            .find(|e| Self::env_matches(e, src, tag) && Self::env_ready(e))
            .map(|e| MessageInfo {
                src: e.src,
                tag: e.tag,
                len: match &e.kind {
                    PktKind::Eager { len, .. } => *len,
                    PktKind::EagerBuffered { len, .. } => *len,
                    PktKind::EagerPartial { len, .. } => *len,
                    PktKind::EagerFrag { .. } => {
                        unreachable!("fragments are routed by handle_frag")
                    }
                    PktKind::Rts { len, .. } => *len,
                    PktKind::Done { .. } => unreachable!("Done never parks as unexpected"),
                },
            })
    }

    /// Blocking probe (MPI_Probe): poll until a matching message is
    /// visible, then return its metadata. Combine with [`Comm::recv`] to
    /// receive messages of unknown size.
    pub fn probe(&self, src: Option<usize>, tag: Option<i32>) -> MessageInfo {
        let start = self.p.now();
        loop {
            if let Some(info) = self.iprobe(src, tag) {
                return info;
            }
            self.p.poll_tick();
            assert!(
                self.p.now() - start < WATCHDOG_PS,
                "rank {} stuck in probe()",
                self.rank()
            );
        }
    }

    /// Block until the request completes.
    pub fn wait(&self, r: Request) {
        let start = self.p.now();
        loop {
            if self.inner.borrow().reqs[r.0] == ReqState::Done {
                return;
            }
            let worked = self.progress();
            if !worked {
                self.p.poll_tick();
            }
            assert!(
                self.p.now() - start < WATCHDOG_PS,
                "rank {} stuck in wait() for >200 simulated seconds: deadlock?",
                self.rank()
            );
        }
    }

    /// Block until all requests complete.
    pub fn waitall(&self, rs: &[Request]) {
        for &r in rs {
            self.wait(r);
        }
    }

    // ------------------------------------------------------------------
    // Eager path
    // ------------------------------------------------------------------

    /// Eager send of the source segments (one contiguous run, or a
    /// layout's blocks): copy into pooled cells (first copy of the two)
    /// and enqueue the envelope. Messages needing more cells than the
    /// pool holds stream through it in fragments (real Nemesis sends
    /// multi-cell eager data this way).
    fn eager_send(&self, dst: usize, tag: i32, src: &[(BufId, u64, u64)], len: u64) {
        let cfg = &self.nem.cfg;
        let ncells = len.div_ceil(cfg.cell_payload) as usize;
        if ncells <= cfg.cells_per_proc {
            self.eager_send_single(dst, tag, src, len, ncells);
        } else {
            self.eager_send_fragmented(dst, tag, src, len);
        }
    }

    fn eager_send_single(
        &self,
        dst: usize,
        tag: i32,
        src: &[(BufId, u64, u64)],
        len: u64,
        ncells: usize,
    ) {
        let cfg = &self.nem.cfg;
        // Acquire cells from our own pool (§2: sender-owned cells).
        let me = self.rank();
        let cells: Vec<usize> = {
            let start = self.p.now();
            loop {
                {
                    let mut sh = self.nem.sh.lock();
                    if sh.free_cells[me].len() >= ncells {
                        let at = sh.free_cells[me].len() - ncells;
                        break sh.free_cells[me].split_off(at);
                    }
                }
                self.progress();
                self.p.poll_tick();
                assert!(
                    self.p.now() - start < WATCHDOG_PS,
                    "rank {me} starved of eager cells"
                );
            }
        };
        let mut chunks = Vec::with_capacity(ncells);
        let mut remaining = len;
        let cell_segs: Vec<(BufId, u64, u64)> = cells
            .iter()
            .map(|&c| {
                let n = remaining.min(cfg.cell_payload);
                remaining -= n;
                chunks.push((me, c, n));
                (self.nem.seg.cell_pool[me], self.nem.seg.cell_off(c), n)
            })
            .collect();
        self.scatter_copy(src, &cell_segs);
        self.enqueue(
            dst,
            Envelope {
                src: me,
                tag,
                kind: PktKind::Eager { len, cells: chunks },
            },
        );
    }

    /// Stream an oversized eager payload through the cell pool: grab
    /// whatever cells are free (at least one), ship a fragment, repeat.
    /// Fragments stay FIFO on the pair's queue, so the receiver can
    /// reassemble by offset.
    fn eager_send_fragmented(&self, dst: usize, tag: i32, src: &[(BufId, u64, u64)], len: u64) {
        let cfg = &self.nem.cfg;
        let me = self.rank();
        let msg_id = {
            let mut inner = self.inner.borrow_mut();
            inner.next_msg_id += 1;
            (me as u64) << 48 | inner.next_msg_id
        };
        let mut sent = 0u64;
        let start = self.p.now();
        while sent < len {
            let cells: Vec<usize> = loop {
                {
                    let mut sh = self.nem.sh.lock();
                    let free = &mut sh.free_cells[me];
                    if !free.is_empty() {
                        let need = ((len - sent).div_ceil(cfg.cell_payload) as usize)
                            .min(free.len());
                        let at = free.len() - need;
                        break free.split_off(at);
                    }
                }
                self.progress();
                self.p.poll_tick();
                assert!(
                    self.p.now() - start < WATCHDOG_PS,
                    "rank {me} starved of eager cells"
                );
            };
            let mut chunks = Vec::with_capacity(cells.len());
            let mut batch = 0u64;
            let cell_segs: Vec<(BufId, u64, u64)> = cells
                .iter()
                .map(|&c| {
                    let n = (len - sent - batch).min(cfg.cell_payload);
                    batch += n;
                    chunks.push((me, c, n));
                    (self.nem.seg.cell_pool[me], self.nem.seg.cell_off(c), n)
                })
                .collect();
            self.scatter_copy(&segs_slice(src, sent, batch), &cell_segs);
            self.enqueue(
                dst,
                Envelope {
                    src: me,
                    tag,
                    kind: PktKind::EagerFrag {
                        msg_id,
                        len,
                        off: sent,
                        cells: chunks,
                    },
                },
            );
            sent += batch;
        }
    }

    /// Copy an eager payload out of its cells into the destination
    /// segments and release the cells (second copy of the two).
    fn eager_deliver(&self, cells: &[(usize, usize, u64)], len: u64, dst: &[(BufId, u64, u64)]) {
        let src: Vec<(BufId, u64, u64)> = cells
            .iter()
            .map(|&(owner, idx, n)| {
                (self.nem.seg.cell_pool[owner], self.nem.seg.cell_off(idx), n)
            })
            .collect();
        debug_assert_eq!(src.iter().map(|s| s.2).sum::<u64>(), len);
        self.scatter_copy(&src, dst);
        if !cells.is_empty() {
            let mut sh = self.nem.sh.lock();
            for &(owner, idx, _) in cells {
                sh.free_cells[owner].push(idx);
            }
            drop(sh);
            self.p.advance(
                cells.len() as u64 * self.nem.os.machine().cfg().costs.queue_op,
            );
        }
    }

    // ------------------------------------------------------------------
    // Rendezvous path
    // ------------------------------------------------------------------

    fn rndv_send(&self, dst: usize, tag: i32, buf: BufId, off: u64, len: u64) -> Request {
        let me = self.rank();
        let req = self.new_req(ReqState::Active);
        let msg_id = {
            let mut inner = self.inner.borrow_mut();
            inner.next_msg_id += 1;
            (me as u64) << 48 | inner.next_msg_id
        };
        let backend = match self.nem.cfg.lmt {
            LmtSelect::Dynamic => self.nem.dynamic_backend(self.p.core(), dst, len),
            fixed => fixed,
        };
        let (wire, state) = match backend {
            LmtSelect::Dynamic => unreachable!("resolved above"),
            LmtSelect::ShmCopy => {
                self.nem.ensure_ring(me, dst);
                (LmtWire::Shm, SendState::ShmAcquire)
            }
            LmtSelect::PipeWritev => {
                let pipe = self.nem.ensure_pipe(me, dst);
                (
                    LmtWire::Pipe {
                        pipe,
                        vmsplice: false,
                    },
                    SendState::PipeAcquire {
                        vmsplice: false,
                        pipe,
                    },
                )
            }
            LmtSelect::Vmsplice => {
                let pipe = self.nem.ensure_pipe(me, dst);
                (
                    LmtWire::Pipe {
                        pipe,
                        vmsplice: true,
                    },
                    SendState::PipeAcquire {
                        vmsplice: true,
                        pipe,
                    },
                )
            }
            LmtSelect::Knem(_) => {
                let cookie = self.nem.os.knem_send_cmd(self.p, &[Iov::new(buf, off, len)]);
                (LmtWire::Knem { cookie }, SendState::KnemWait)
            }
        };
        self.enqueue(
            dst,
            Envelope {
                src: me,
                tag,
                kind: PktKind::Rts {
                    msg_id,
                    len,
                    wire,
                    concurrency: self.concurrency.get(),
                },
            },
        );
        self.inner.borrow_mut().sends.push(SendRndv {
            req,
            msg_id,
            dst,
            buf,
            off,
            len,
            state,
            done: false,
            staging: None,
        });
        Request(req)
    }

    /// KNEM rendezvous send of an explicit iovec — the "vectorial
    /// buffers" feature §5 contrasts with LIMIC2. The cookie pins every
    /// block; the receiver's copy walks both scatter lists, so the
    /// transfer remains single-copy.
    fn rndv_send_iovs(&self, dst: usize, tag: i32, iovs: &[Iov], len: u64) -> Request {
        debug_assert!(matches!(
            self.nem.cfg.lmt,
            LmtSelect::Knem(_) | LmtSelect::Dynamic
        ));
        debug_assert_eq!(Iov::total(iovs), len);
        let me = self.rank();
        let req = self.new_req(ReqState::Active);
        let msg_id = {
            let mut inner = self.inner.borrow_mut();
            inner.next_msg_id += 1;
            (me as u64) << 48 | inner.next_msg_id
        };
        let cookie = self.nem.os.knem_send_cmd(self.p, iovs);
        self.enqueue(
            dst,
            Envelope {
                src: me,
                tag,
                kind: PktKind::Rts {
                    msg_id,
                    len,
                    wire: LmtWire::Knem { cookie },
                    concurrency: self.concurrency.get(),
                },
            },
        );
        self.inner.borrow_mut().sends.push(SendRndv {
            req,
            msg_id,
            dst,
            // The cookie owns the block list; buf/off are unused while
            // waiting for the receiver's DONE.
            buf: iovs[0].buf,
            off: iovs[0].off,
            len,
            state: SendState::KnemWait,
            done: false,
            staging: None,
        });
        Request(req)
    }

    // ------------------------------------------------------------------
    // Envelope plumbing
    // ------------------------------------------------------------------

    fn enqueue(&self, dst: usize, env: Envelope) {
        let start = self.p.now();
        loop {
            {
                let mut sh = self.nem.sh.lock();
                if sh.queues[dst].len() < self.nem.cfg.queue_slots {
                    sh.queues[dst].push_back(env);
                    break;
                }
            }
            self.progress();
            self.p.poll_tick();
            assert!(
                self.p.now() - start < WATCHDOG_PS,
                "receive queue of rank {dst} full for >200 simulated seconds"
            );
        }
        self.nem.seg.charge_enqueue(self.p, &self.nem.os, dst);
        self.p.yield_now();
    }

    fn env_matches(env: &Envelope, src: Option<usize>, tag: Option<i32>) -> bool {
        src.map(|s| s == env.src).unwrap_or(true) && tag.map(|t| t == env.tag).unwrap_or(true)
    }

    /// Whether a parked envelope is deliverable (reassemblies only match
    /// once every fragment has arrived).
    fn env_ready(env: &Envelope) -> bool {
        !matches!(
            env.kind,
            PktKind::EagerPartial { len, received, .. } if received < len
        )
    }

    /// Deliver a matched envelope into a posted receive. `layout` selects
    /// a noncontiguous destination; `buf`/`off` describe the contiguous
    /// case (with `layout`, `off` is ignored in favour of its blocks).
    fn deliver_any(
        &self,
        env: Envelope,
        req: usize,
        buf: BufId,
        off: u64,
        cap: u64,
        layout: Option<VectorLayout>,
    ) {
        match env.kind {
            PktKind::Eager { len, ref cells } => {
                assert!(len <= cap, "eager message ({len} B) overflows receive buffer ({cap} B)");
                let dst = self.dst_segments(buf, off, len, layout.as_ref());
                self.eager_deliver(cells, len, &dst);
                self.inner.borrow_mut().reqs[req] = ReqState::Done;
            }
            PktKind::EagerBuffered {
                len,
                cap: tmp_cap,
                tmp,
            }
            | PktKind::EagerPartial {
                len,
                cap: tmp_cap,
                tmp,
                received: _,
                msg_id: _,
            } => {
                debug_assert!(
                    Self::env_ready(&env),
                    "incomplete reassembly must never match"
                );
                assert!(len <= cap, "eager message ({len} B) overflows receive buffer ({cap} B)");
                match layout {
                    Some(l) => unpack(&self.nem.os, self.p, tmp, 0, buf, &l),
                    None => self.nem.os.user_copy(self.p, tmp, 0, buf, off, len),
                }
                let mut inner = self.inner.borrow_mut();
                inner.tmp_pool.push((tmp_cap, tmp));
                inner.reqs[req] = ReqState::Done;
            }
            PktKind::Rts {
                msg_id,
                len,
                wire,
                concurrency,
            } => {
                assert!(len <= cap, "rendezvous message ({len} B) overflows receive buffer ({cap} B)");
                let state = match wire {
                    LmtWire::Shm => RecvState::ShmActive {
                        recvd: 0,
                        next_slot: 0,
                    },
                    LmtWire::Pipe { .. } => RecvState::PipeActive { read: 0 },
                    LmtWire::Knem { .. } => RecvState::KnemIssue,
                };
                // KNEM consumes scatter layouts natively (receive iovec);
                // the byte-stream wires receive into a staging buffer and
                // unpack on completion.
                let (buf, off, layout, staging) = match (&wire, layout) {
                    (LmtWire::Knem { .. }, l) => (buf, off, l, None),
                    (_, Some(l)) => {
                        let (scap, stage) = self.tmp_acquire(len);
                        (stage, 0, Some(l), Some((scap, stage, buf)))
                    }
                    (_, None) => (buf, off, None, None),
                };
                self.inner.borrow_mut().recvs.push(RecvRndv {
                    req,
                    src: env.src,
                    msg_id,
                    buf,
                    off,
                    len,
                    wire,
                    concurrency,
                    state,
                    done: false,
                    layout,
                    staging,
                });
            }
            PktKind::EagerFrag { .. } => unreachable!("fragments are routed by handle_frag"),
            PktKind::Done { .. } => unreachable!("Done packets are handled in progress()"),
        }
    }

    /// Destination segments of a receive: the layout's blocks, or one
    /// contiguous run.
    fn dst_segments(
        &self,
        buf: BufId,
        off: u64,
        len: u64,
        layout: Option<&VectorLayout>,
    ) -> Vec<(BufId, u64, u64)> {
        match layout {
            Some(l) => {
                debug_assert_eq!(l.total(), len);
                l.blocks().into_iter().map(|(o, n)| (buf, o, n)).collect()
            }
            None => vec![(buf, off, len)],
        }
    }

    /// Route one fragment of a streamed eager message: into the matched
    /// receive's segments, onto an unexpected reassembly, or (first
    /// fragment) through matching.
    fn handle_frag(&self, env: Envelope) {
        let PktKind::EagerFrag {
            msg_id,
            len,
            off,
            ref cells,
        } = env.kind
        else {
            unreachable!()
        };
        let n: u64 = cells.iter().map(|c| c.2).sum();
        // (a) Later fragment of a message already matched to a receive.
        let pos = {
            let inner = self.inner.borrow();
            inner
                .eager_in
                .iter()
                .position(|f| f.src == env.src && f.msg_id == msg_id)
        };
        if let Some(i) = pos {
            let dst_sub = segs_slice(&self.inner.borrow().eager_in[i].dst, off, n);
            self.eager_deliver(cells, n, &dst_sub);
            let mut inner = self.inner.borrow_mut();
            let f = &mut inner.eager_in[i];
            f.received += n;
            if f.received == f.total {
                let req = f.req;
                inner.eager_in.swap_remove(i);
                inner.reqs[req] = ReqState::Done;
            }
            return;
        }
        // (b) Later fragment of an unexpected message: append to its
        // reassembly staging.
        let partial = {
            let inner = self.inner.borrow();
            inner.unexpected.iter().enumerate().find_map(|(qi, e)| {
                if e.src != env.src {
                    return None;
                }
                match e.kind {
                    PktKind::EagerPartial { msg_id: m, tmp, .. } if m == msg_id => {
                        Some((qi, tmp))
                    }
                    _ => None,
                }
            })
        };
        if let Some((qi, tmp)) = partial {
            self.eager_deliver(cells, n, &[(tmp, off, n)]);
            let complete = {
                let mut inner = self.inner.borrow_mut();
                match &mut inner.unexpected[qi].kind {
                    PktKind::EagerPartial { received, len, .. } => {
                        *received += n;
                        received == len
                    }
                    _ => unreachable!(),
                }
            };
            if complete {
                // A receive may have been posted while fragments were
                // still streaming in; it could never match the partial,
                // so re-run matching now.
                let rematch = {
                    let mut inner = self.inner.borrow_mut();
                    let e = &inner.unexpected[qi];
                    let pos = inner
                        .posted
                        .iter()
                        .position(|pr| Self::env_matches(e, pr.src, pr.tag));
                    pos.map(|pi| {
                        let env = inner.unexpected.remove(qi).unwrap();
                        (env, inner.posted.remove(pi))
                    })
                };
                if let Some((env, pr)) = rematch {
                    self.deliver_any(env, pr.req, pr.buf, pr.off, pr.cap, pr.layout);
                }
            }
            return;
        }
        // (c) First fragment: match against posted receives, or start an
        // unexpected reassembly.
        debug_assert_eq!(off, 0, "first fragment must carry offset 0");
        let matched = {
            let mut inner = self.inner.borrow_mut();
            let pos = inner
                .posted
                .iter()
                .position(|pr| Self::env_matches(&env, pr.src, pr.tag));
            pos.map(|i| inner.posted.remove(i))
        };
        match matched {
            Some(pr) => {
                assert!(
                    len <= pr.cap,
                    "eager message ({len} B) overflows receive buffer ({} B)",
                    pr.cap
                );
                let dst = self.dst_segments(pr.buf, pr.off, len, pr.layout.as_ref());
                self.eager_deliver(cells, n, &segs_slice(&dst, 0, n));
                let mut inner = self.inner.borrow_mut();
                if n == len {
                    inner.reqs[pr.req] = ReqState::Done;
                } else {
                    inner.eager_in.push(EagerInflight {
                        src: env.src,
                        msg_id,
                        req: pr.req,
                        dst,
                        total: len,
                        received: n,
                    });
                }
            }
            None => {
                let (cap, tmp) = self.tmp_acquire(len);
                self.eager_deliver(cells, n, &[(tmp, 0, n)]);
                self.inner.borrow_mut().unexpected.push_back(Envelope {
                    src: env.src,
                    tag: env.tag,
                    kind: PktKind::EagerPartial {
                        msg_id,
                        len,
                        cap,
                        tmp,
                        received: n,
                    },
                });
            }
        }
    }

    fn handle_env(&self, env: Envelope) {
        if let PktKind::EagerFrag { .. } = env.kind {
            return self.handle_frag(env);
        }
        if let PktKind::Done { msg_id } = env.kind {
            let mut inner = self.inner.borrow_mut();
            let s = inner
                .sends
                .iter_mut()
                .find(|s| s.msg_id == msg_id)
                .expect("DONE for unknown send");
            debug_assert!(matches!(s.state, SendState::KnemWait));
            s.done = true;
            let req = s.req;
            inner.reqs[req] = ReqState::Done;
            inner.sends.retain(|s| !s.done);
            return;
        }
        // Eager or RTS: match against posted receives in post order.
        let matched = {
            let mut inner = self.inner.borrow_mut();
            let pos = inner
                .posted
                .iter()
                .position(|pr| Self::env_matches(&env, pr.src, pr.tag));
            pos.map(|i| inner.posted.remove(i))
        };
        match matched {
            Some(pr) => self.deliver_any(env, pr.req, pr.buf, pr.off, pr.cap, pr.layout),
            None => {
                let env = self.buffer_unexpected(env);
                self.inner.borrow_mut().unexpected.push_back(env);
            }
        }
    }

    /// Copy an unexpected eager payload out of the sender's shared cells
    /// into a private temporary buffer and release the cells — MPICH2's
    /// unexpected-receive path. Without this, a sender flooding a receiver
    /// that matches in a different order starves of cells and the eager
    /// flow control deadlocks.
    fn buffer_unexpected(&self, env: Envelope) -> Envelope {
        let PktKind::Eager { len, ref cells } = env.kind else {
            return env;
        };
        if cells.is_empty() {
            return env;
        }
        let (cap, tmp) = self.tmp_acquire(len);
        let mut done = 0;
        for &(owner, idx, n) in cells {
            self.nem.os.user_copy(
                self.p,
                self.nem.seg.cell_pool[owner],
                self.nem.seg.cell_off(idx),
                tmp,
                done,
                n,
            );
            done += n;
        }
        debug_assert_eq!(done, len);
        {
            let mut sh = self.nem.sh.lock();
            for &(owner, idx, _) in cells {
                sh.free_cells[owner].push(idx);
            }
        }
        self.p
            .advance(cells.len() as u64 * self.nem.os.machine().cfg().costs.queue_op);
        Envelope {
            kind: PktKind::EagerBuffered { len, cap, tmp },
            ..env
        }
    }

    /// Acquire a private temporary buffer of at least `len` bytes from
    /// the recycling pool (capacities are rounded to cell-payload
    /// granules so buffers re-match).
    fn tmp_acquire(&self, len: u64) -> (u64, BufId) {
        let granule = self.nem.cfg.cell_payload.max(64);
        let cap = len.div_ceil(granule).max(1) * granule;
        let mut inner = self.inner.borrow_mut();
        match inner.tmp_pool.iter().position(|&(c, _)| c == cap) {
            Some(i) => inner.tmp_pool.swap_remove(i),
            None => (cap, self.nem.os.alloc(self.rank(), cap)),
        }
    }

    /// Piecewise copy between two segment lists of equal total length,
    /// charging every byte through the cache model. The workhorse of
    /// noncontiguous eager sends/receives.
    fn scatter_copy(&self, src: &[(BufId, u64, u64)], dst: &[(BufId, u64, u64)]) {
        debug_assert_eq!(
            src.iter().map(|s| s.2).sum::<u64>(),
            dst.iter().map(|d| d.2).sum::<u64>(),
            "segment totals must match"
        );
        let mut si = 0;
        let mut soff = 0u64;
        for &(dbuf, doff, dlen) in dst {
            let mut done = 0u64;
            while done < dlen {
                let (sbuf, sbase, slen) = src[si];
                let n = (slen - soff).min(dlen - done);
                self.nem
                    .os
                    .user_copy(self.p, sbuf, sbase + soff, dbuf, doff + done, n);
                soff += n;
                done += n;
                if soff == slen {
                    si += 1;
                    soff = 0;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Progress engine
    // ------------------------------------------------------------------

    /// One pass of the progress engine; returns whether any work was done.
    pub fn progress(&self) -> bool {
        let me = self.rank();
        let mut did = false;
        // 1. Drain the receive queue.
        let envs: Vec<Envelope> = {
            let mut sh = self.nem.sh.lock();
            sh.queues[me].drain(..).collect()
        };
        self.nem.seg.charge_queue_poll(self.p, &self.nem.os);
        if !envs.is_empty() {
            self.nem.seg.charge_dequeue(self.p, &self.nem.os, envs.len());
            did = true;
            for env in envs {
                self.handle_env(env);
            }
        }
        // 2. Step active receives (taken out to avoid reborrowing).
        // Rings and pipes are per-pair FIFO resources: precompute, for
        // each pair, the oldest active transfer so only it touches the
        // shared resource this pass.
        let mut recvs = std::mem::take(&mut self.inner.borrow_mut().recvs);
        let recv_heads = pair_heads(recvs.iter().filter_map(|r| {
            matches!(r.wire, LmtWire::Pipe { .. }).then_some((r.src, r.msg_id))
        }));
        for r in &mut recvs {
            did |= self.step_recv(r, &recv_heads);
        }
        {
            let mut inner = self.inner.borrow_mut();
            recvs.retain(|r| !r.done);
            recvs.append(&mut inner.recvs); // any added meanwhile (none today)
            inner.recvs = recvs;
        }
        // 3. Step active sends.
        let mut sends = std::mem::take(&mut self.inner.borrow_mut().sends);
        let send_heads = pair_heads(sends.iter().filter_map(|s| {
            (!matches!(s.state, SendState::KnemWait)).then_some((s.dst, s.msg_id))
        }));
        for s in &mut sends {
            did |= self.step_send(s, &send_heads);
        }
        {
            let mut inner = self.inner.borrow_mut();
            sends.retain(|s| !s.done);
            sends.append(&mut inner.sends);
            inner.sends = sends;
        }
        did
    }

    /// Mark a rendezvous send complete, recycling its pack staging.
    fn complete_send(&self, s: &mut SendRndv) {
        let mut inner = self.inner.borrow_mut();
        if let Some((cap, stage)) = s.staging.take() {
            inner.tmp_pool.push((cap, stage));
        }
        inner.reqs[s.req] = ReqState::Done;
        s.done = true;
    }

    /// Mark a rendezvous receive complete: unpack the staging buffer into
    /// the user layout (scatter-blind wires only), recycle it, and
    /// complete the request.
    fn complete_recv(&self, r: &mut RecvRndv) {
        if let Some((cap, stage, user_buf)) = r.staging.take() {
            let layout = r.layout.expect("staged receives carry a layout");
            unpack(&self.nem.os, self.p, stage, 0, user_buf, &layout);
            self.inner.borrow_mut().tmp_pool.push((cap, stage));
        }
        r.done = true;
        self.inner.borrow_mut().reqs[r.req] = ReqState::Done;
    }

    fn step_send(&self, s: &mut SendRndv, heads: &PairHeads) -> bool {
        let os = &self.nem.os;
        let cfg = &self.nem.cfg;
        let me = self.rank();
        match s.state {
            SendState::KnemWait => false, // completed by DONE envelope
            SendState::ShmAcquire => {
                // FIFO per pair: acquire only if we are the oldest.
                if heads.get(&s.dst) != Some(&s.msg_id) {
                    return false;
                }
                let key = self.nem.ring_key(me, s.dst);
                let mut sh = self.nem.sh.lock();
                let ring = sh.rings.get_mut(&key).expect("ring exists");
                if ring.owner.is_none() {
                    ring.owner = Some(s.msg_id);
                    drop(sh);
                    s.state = SendState::ShmActive {
                        sent: 0,
                        next_slot: 0,
                    };
                    true
                } else {
                    false
                }
            }
            SendState::ShmActive {
                ref mut sent,
                ref mut next_slot,
            } => {
                let key = self.nem.ring_key(me, s.dst);
                let mut did = false;
                // Fill every currently-free buffer (double buffering).
                while *sent < s.len {
                    let slot = *next_slot % cfg.ring_bufs;
                    let (fill, ring_buf) = {
                        let sh = self.nem.sh.lock();
                        let ring = &sh.rings[&key];
                        // Check the slot flag (cached read).
                        self.nem.seg.charge_flag(self.p, os, ring, slot, false);
                        (ring.fill[slot], ring.bufs[slot])
                    };
                    if fill != 0 {
                        break; // receiver hasn't drained it yet
                    }
                    let n = (s.len - *sent).min(cfg.ring_chunk);
                    os.user_copy(self.p, s.buf, s.off + *sent, ring_buf, 0, n);
                    {
                        let mut sh = self.nem.sh.lock();
                        let ring = sh.rings.get_mut(&key).unwrap();
                        ring.fill[slot] = n;
                        self.nem.seg.charge_flag(self.p, os, ring, slot, true);
                    }
                    *sent += n;
                    *next_slot += 1;
                    did = true;
                }
                if *sent == s.len {
                    // Complete once the receiver drained everything.
                    let drained = {
                        let sh = self.nem.sh.lock();
                        sh.rings[&key].fill.iter().all(|&f| f == 0)
                    };
                    if drained {
                        let mut sh = self.nem.sh.lock();
                        sh.rings.get_mut(&key).unwrap().owner = None;
                        drop(sh);
                        self.complete_send(s);
                        did = true;
                    }
                }
                did
            }
            SendState::PipeAcquire { vmsplice, pipe } => {
                if heads.get(&s.dst) != Some(&s.msg_id) {
                    return false;
                }
                let key = (me, s.dst);
                let mut sh = self.nem.sh.lock();
                let pp = sh.pipes.get_mut(&key).expect("pipe exists");
                if pp.busy_parties == 0 {
                    pp.busy_parties = 2;
                    drop(sh);
                    s.state = SendState::PipeActive {
                        written: 0,
                        vmsplice,
                        pipe,
                    };
                    true
                } else {
                    false
                }
            }
            SendState::PipeActive {
                ref mut written,
                vmsplice,
                pipe,
            } => {
                if *written >= s.len {
                    return false;
                }
                let n = if vmsplice {
                    os.pipe_try_vmsplice(self.p, pipe, s.buf, s.off + *written, s.len - *written)
                } else {
                    os.pipe_try_write(self.p, pipe, s.buf, s.off + *written, s.len - *written)
                };
                *written += n;
                if *written == s.len {
                    if vmsplice {
                        // Gift semantics: pages must remain valid until read.
                        s.state = SendState::PipeDrain { pipe };
                    } else {
                        self.finish_pipe_side(me, s.dst);
                        self.complete_send(s);
                    }
                }
                n > 0
            }
            SendState::PipeDrain { pipe } => {
                if self.nem.os.pipe_is_drained(pipe) {
                    self.finish_pipe_side(me, s.dst);
                    self.complete_send(s);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn finish_pipe_side(&self, src: usize, dst: usize) {
        let mut sh = self.nem.sh.lock();
        let pp = sh.pipes.get_mut(&(src, dst)).expect("pipe exists");
        debug_assert!(pp.busy_parties > 0);
        pp.busy_parties -= 1;
    }

    fn step_recv(&self, r: &mut RecvRndv, heads: &PairHeads) -> bool {
        let os = &self.nem.os;
        let cfg = &self.nem.cfg;
        let me = self.rank();
        match r.state {
            RecvState::ShmActive {
                ref mut recvd,
                ref mut next_slot,
            } => {
                let key = self.nem.ring_key(r.src, me);
                // Only drain when the ring belongs to our message.
                {
                    let sh = self.nem.sh.lock();
                    match sh.rings.get(&key) {
                        Some(ring) if ring.owner == Some(r.msg_id) => {}
                        _ => return false,
                    }
                }
                let mut did = false;
                while *recvd < r.len {
                    let slot = *next_slot % cfg.ring_bufs;
                    let (fill, ring_buf) = {
                        let sh = self.nem.sh.lock();
                        let ring = &sh.rings[&key];
                        self.nem.seg.charge_flag(self.p, os, ring, slot, false);
                        (ring.fill[slot], ring.bufs[slot])
                    };
                    if fill == 0 {
                        break; // sender hasn't filled it yet
                    }
                    os.user_copy(self.p, ring_buf, 0, r.buf, r.off + *recvd, fill);
                    {
                        let mut sh = self.nem.sh.lock();
                        let ring = sh.rings.get_mut(&key).unwrap();
                        ring.fill[slot] = 0;
                        self.nem.seg.charge_flag(self.p, os, ring, slot, true);
                    }
                    *recvd += fill;
                    *next_slot += 1;
                    did = true;
                }
                if *recvd == r.len {
                    self.complete_recv(r);
                }
                did
            }
            RecvState::PipeActive { ref mut read } => {
                let LmtWire::Pipe { pipe, .. } = r.wire else {
                    unreachable!()
                };
                if heads.get(&r.src) != Some(&r.msg_id) {
                    return false;
                }
                // The byte stream carries messages in FIFO order; only
                // read once the sender has acquired the pipe for *us*
                // (bytes present imply that).
                let avail = os.pipe_bytes_available(pipe);
                if avail == 0 {
                    return false;
                }
                let n = os.pipe_try_read(self.p, pipe, r.buf, r.off + *read, r.len - *read);
                *read += n;
                if *read == r.len {
                    self.finish_pipe_side(r.src, me);
                    self.complete_recv(r);
                }
                n > 0
            }
            RecvState::KnemIssue => {
                let LmtWire::Knem { cookie } = r.wire else {
                    unreachable!()
                };
                let sel = match self.nem.cfg.lmt {
                    LmtSelect::Knem(sel) => sel,
                    // The blended policy always uses the DMAmin-driven
                    // automatic mode when it picked KNEM.
                    LmtSelect::Dynamic => KnemSelect::Auto,
                    // The sender chose KNEM; if our config disagrees we
                    // still honour the wire protocol with the default.
                    _ => KnemSelect::SyncCpu,
                };
                let flags = self.resolve_knem(sel, r.len, r.concurrency);
                let status = {
                    let mut inner = self.inner.borrow_mut();
                    inner.status_pool.pop()
                }
                .unwrap_or_else(|| os.knem_alloc_status(me));
                // Scatter receives hand KNEM the block list directly —
                // the kernel copy walks both iovecs (single copy).
                let iovs = match &r.layout {
                    Some(l) => l.iovs(r.buf),
                    None => vec![Iov::new(r.buf, r.off, r.len)],
                };
                os.knem_recv_cmd(self.p, cookie, &iovs, flags, status);
                r.state = RecvState::KnemPoll { status };
                true
            }
            RecvState::KnemPoll { status } => {
                if os.knem_poll_status(self.p, status) {
                    let LmtWire::Knem { cookie } = r.wire else {
                        unreachable!()
                    };
                    os.knem_destroy_cookie(self.p, cookie);
                    os.knem_reset_status(self.p, status);
                    self.inner.borrow_mut().status_pool.push(status);
                    self.enqueue(
                        r.src,
                        Envelope {
                            src: me,
                            tag: 0,
                            kind: PktKind::Done { msg_id: r.msg_id },
                        },
                    );
                    self.complete_recv(r);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// §3.5: decide how the KNEM receive command runs.
    pub fn resolve_knem(&self, sel: KnemSelect, len: u64, concurrency: u32) -> KnemFlags {
        match sel {
            KnemSelect::SyncCpu => KnemFlags::sync_cpu(),
            KnemSelect::AsyncKthread => KnemFlags::async_kthread(),
            KnemSelect::SyncIoat => KnemFlags::sync_ioat(),
            KnemSelect::AsyncIoat => KnemFlags::async_ioat(),
            KnemSelect::Auto => {
                let dma_min = self
                    .nem
                    .cfg
                    .dma_min(self.nem.os.machine(), concurrency as usize);
                if len >= dma_min {
                    // KNEM enables async mode by default only with I/OAT
                    // (§4.3).
                    KnemFlags::async_ioat()
                } else {
                    KnemFlags::sync_cpu()
                }
            }
        }
    }
}

/// Per-peer oldest active transfer: peer rank → minimum msg id.
type PairHeads = std::collections::HashMap<usize, u64>;

fn pair_heads(items: impl Iterator<Item = (usize, u64)>) -> PairHeads {
    let mut m = PairHeads::new();
    for (peer, id) in items {
        m.entry(peer)
            .and_modify(|v| *v = (*v).min(id))
            .or_insert(id);
    }
    m
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;
    use nemesis_sim::{run_simulation, Machine, MachineConfig};

    /// Run a two-rank scenario on cores (0, 4) with the given config.
    pub(crate) fn two_ranks(
        cfg: NemesisConfig,
        body: impl Fn(&Comm<'_>) + Send + Sync,
    ) -> nemesis_sim::SimReport {
        let machine = Arc::new(Machine::new(MachineConfig::xeon_e5345()));
        let os = Arc::new(Os::new(Arc::clone(&machine)));
        let nem = Nemesis::new(os, 2, cfg);
        run_simulation(machine, &[0, 4], |p| {
            let comm = nem.attach(p);
            body(&comm);
        })
    }

    fn fill_pattern(comm: &Comm<'_>, buf: BufId, len: u64, seed: u8) {
        comm.os().with_data_mut(comm.proc(), buf, |d| {
            for (i, b) in d.iter_mut().enumerate().take(len as usize) {
                *b = (i as u8).wrapping_mul(31).wrapping_add(seed);
            }
        });
        comm.os().touch_write(comm.proc(), buf, 0, len);
    }

    fn check_pattern(comm: &Comm<'_>, buf: BufId, len: u64, seed: u8) {
        comm.os().with_data(comm.proc(), buf, |d| {
            for (i, b) in d.iter().enumerate().take(len as usize) {
                assert_eq!(
                    *b,
                    (i as u8).wrapping_mul(31).wrapping_add(seed),
                    "byte {i} corrupt"
                );
            }
        });
    }

    fn roundtrip_with(cfg: NemesisConfig, len: u64) {
        two_ranks(cfg, |comm| {
            let os = comm.os();
            let buf = os.alloc(comm.rank(), len.max(1));
            if comm.rank() == 0 {
                fill_pattern(comm, buf, len, 42);
                comm.send(1, 7, buf, 0, len);
            } else {
                comm.recv(Some(0), Some(7), buf, 0, len);
                check_pattern(comm, buf, len, 42);
            }
        });
    }

    #[test]
    fn eager_small_message() {
        roundtrip_with(NemesisConfig::default(), 1000);
    }

    #[test]
    fn eager_multi_cell() {
        // 48 KiB spans 3 cells of 16 KiB.
        roundtrip_with(NemesisConfig::default(), 48 << 10);
    }

    #[test]
    fn eager_zero_length() {
        roundtrip_with(NemesisConfig::default(), 0);
    }

    #[test]
    fn eager_exactly_threshold() {
        roundtrip_with(NemesisConfig::default(), 64 << 10);
    }

    #[test]
    fn rndv_shm_copy() {
        roundtrip_with(NemesisConfig::with_lmt(LmtSelect::ShmCopy), 256 << 10);
    }

    #[test]
    fn rndv_pipe_writev() {
        roundtrip_with(NemesisConfig::with_lmt(LmtSelect::PipeWritev), 256 << 10);
    }

    #[test]
    fn rndv_vmsplice() {
        roundtrip_with(NemesisConfig::with_lmt(LmtSelect::Vmsplice), 256 << 10);
    }

    #[test]
    fn rndv_knem_sync() {
        roundtrip_with(
            NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::SyncCpu)),
            256 << 10,
        );
    }

    #[test]
    fn rndv_knem_async_kthread() {
        roundtrip_with(
            NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::AsyncKthread)),
            256 << 10,
        );
    }

    #[test]
    fn rndv_knem_sync_ioat() {
        roundtrip_with(
            NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::SyncIoat)),
            256 << 10,
        );
    }

    #[test]
    fn rndv_knem_async_ioat() {
        roundtrip_with(
            NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::AsyncIoat)),
            256 << 10,
        );
    }

    #[test]
    fn rndv_knem_auto_both_sides_of_threshold() {
        let cfg = NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::Auto));
        roundtrip_with(cfg.clone(), 256 << 10); // below DMAmin: sync CPU
        roundtrip_with(cfg, 2 << 20); // above DMAmin: async I/OAT
    }

    #[test]
    fn rndv_4mib_all_backends() {
        for lmt in [
            LmtSelect::ShmCopy,
            LmtSelect::Vmsplice,
            LmtSelect::Knem(KnemSelect::SyncCpu),
            LmtSelect::Knem(KnemSelect::AsyncIoat),
        ] {
            roundtrip_with(NemesisConfig::with_lmt(lmt), 4 << 20);
        }
    }

    #[test]
    fn unexpected_message_then_recv() {
        two_ranks(NemesisConfig::default(), |comm| {
            let os = comm.os();
            let buf = os.alloc(comm.rank(), 4096);
            if comm.rank() == 0 {
                fill_pattern(comm, buf, 4096, 1);
                comm.send(1, 5, buf, 0, 4096);
            } else {
                // Let the message arrive unexpected first.
                for _ in 0..200 {
                    comm.proc().poll_tick();
                }
                comm.progress();
                comm.recv(Some(0), Some(5), buf, 0, 4096);
                check_pattern(comm, buf, 4096, 1);
            }
        });
    }

    #[test]
    fn unexpected_rts_then_recv() {
        two_ranks(
            NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::SyncCpu)),
            |comm| {
                let os = comm.os();
                let buf = os.alloc(comm.rank(), 256 << 10);
                if comm.rank() == 0 {
                    fill_pattern(comm, buf, 256 << 10, 2);
                    comm.send(1, 5, buf, 0, 256 << 10);
                } else {
                    for _ in 0..200 {
                        comm.proc().poll_tick();
                    }
                    comm.progress();
                    comm.recv(Some(0), Some(5), buf, 0, 256 << 10);
                    check_pattern(comm, buf, 256 << 10, 2);
                }
            },
        );
    }

    /// Noncontiguous roundtrip for every LMT: a strided "matrix column"
    /// leaves rank 0 and lands in a differently-strided column on rank 1.
    /// KNEM does this scatter-to-scatter in the kernel; the byte-stream
    /// wires pack/unpack through staging.
    #[test]
    fn vectored_roundtrip_all_lmts() {
        for lmt in [
            LmtSelect::ShmCopy,
            LmtSelect::PipeWritev,
            LmtSelect::Vmsplice,
            LmtSelect::Knem(KnemSelect::SyncCpu),
            LmtSelect::Knem(KnemSelect::AsyncIoat),
            LmtSelect::Knem(KnemSelect::Auto),
        ] {
            // Both eager (small) and rendezvous (large) totals.
            for (bl, count) in [(512u64, 16u64), (16 << 10, 24)] {
                let s_layout = VectorLayout::strided(64, bl, bl * 2, count);
                let r_layout = VectorLayout::strided(128, bl, bl * 3, count);
                let span = s_layout.end().max(r_layout.end());
                two_ranks(NemesisConfig::with_lmt(lmt), |comm| {
                    let os = comm.os();
                    let buf = os.alloc(comm.rank(), span);
                    if comm.rank() == 0 {
                        os.with_data_mut(comm.proc(), buf, |d| {
                            for (i, (off, len)) in
                                s_layout.blocks().into_iter().enumerate()
                            {
                                d[off as usize..(off + len) as usize]
                                    .fill(i as u8 + 1);
                            }
                        });
                        os.touch_write(comm.proc(), buf, 0, span);
                        comm.sendv(1, 3, buf, &s_layout);
                    } else {
                        comm.recvv(Some(0), Some(3), buf, &r_layout);
                        os.with_data(comm.proc(), buf, |d| {
                            for (i, (off, len)) in
                                r_layout.blocks().into_iter().enumerate()
                            {
                                assert!(
                                    d[off as usize..(off + len) as usize]
                                        .iter()
                                        .all(|&b| b == i as u8 + 1),
                                    "{lmt:?} bl={bl}: block {i} corrupt"
                                );
                            }
                        });
                    }
                });
            }
        }
    }

    /// Contiguous send received into a strided layout (and vice versa).
    #[test]
    fn vectored_mixed_contiguity() {
        let layout = VectorLayout::strided(0, 8 << 10, 24 << 10, 16); // 128 KiB
        let len = layout.total();
        two_ranks(
            NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::SyncCpu)),
            |comm| {
                let os = comm.os();
                if comm.rank() == 0 {
                    let buf = os.alloc(0, len);
                    fill_pattern(comm, buf, len, 5);
                    comm.send(1, 1, buf, 0, len);
                    // Reverse direction: strided send, contiguous recv.
                    let s = os.alloc(0, layout.end());
                    os.with_data_mut(comm.proc(), s, |d| d.fill(0x5A));
                    os.touch_write(comm.proc(), s, 0, layout.end());
                    comm.sendv(1, 2, s, &layout);
                } else {
                    let buf = os.alloc(1, layout.end());
                    comm.recvv(Some(0), Some(1), buf, &layout);
                    os.with_data(comm.proc(), buf, |d| {
                        let mut k = 0usize;
                        for (off, blen) in layout.blocks() {
                            for j in 0..blen as usize {
                                assert_eq!(
                                    d[off as usize + j],
                                    (k as u8).wrapping_mul(31).wrapping_add(5),
                                    "byte {k}"
                                );
                                k += 1;
                            }
                        }
                    });
                    let c = os.alloc(1, len);
                    comm.recv(Some(0), Some(2), c, 0, len);
                    os.with_data(comm.proc(), c, |d| {
                        assert!(d[..len as usize].iter().all(|&b| b == 0x5A));
                    });
                }
            },
        );
    }

    /// Vectored messages that arrive unexpected must still deliver
    /// correctly (the staging path interacts with the unexpected queue).
    #[test]
    fn vectored_unexpected_arrival() {
        let layout = VectorLayout::strided(0, 4 << 10, 12 << 10, 40); // 160 KiB rndv
        two_ranks(NemesisConfig::default(), |comm| {
            let os = comm.os();
            if comm.rank() == 0 {
                let s = os.alloc(0, layout.end());
                os.with_data_mut(comm.proc(), s, |d| d.fill(0x7E));
                os.touch_write(comm.proc(), s, 0, layout.end());
                comm.sendv(1, 9, s, &layout);
            } else {
                for _ in 0..300 {
                    comm.proc().poll_tick();
                }
                comm.progress();
                let r = os.alloc(1, layout.end());
                comm.recvv(Some(0), Some(9), r, &layout);
                os.with_data(comm.proc(), r, |d| {
                    for (off, blen) in layout.blocks() {
                        assert!(d[off as usize..(off + blen) as usize]
                            .iter()
                            .all(|&b| b == 0x7E));
                    }
                });
            }
        });
    }

    /// The blended policy resolves per pair: shared-cache pairs take the
    /// ring, cross-socket pairs take KNEM (when loaded), and data stays
    /// byte-exact either way.
    #[test]
    fn dynamic_policy_resolves_per_pair() {
        let machine = Arc::new(Machine::new(MachineConfig::xeon_e5345()));
        let os = Arc::new(Os::new(Arc::clone(&machine)));
        let nem = Nemesis::new(os, 3, NemesisConfig::with_lmt(LmtSelect::Dynamic));
        // Ranks 0,1 share an L2 (cores 0,1); rank 2 sits across the
        // socket (core 4).
        run_simulation(machine, &[0, 1, 4], |p| {
            let comm = nem.attach(p);
            comm.barrier(); // everyone attached: cores are known
            let os = comm.os();
            let me = comm.rank();
            let len = 256 << 10;
            let buf = os.alloc(me, len);
            match me {
                0 => {
                    os.with_data_mut(comm.proc(), buf, |d| d.fill(0xAB));
                    os.touch_write(comm.proc(), buf, 0, len);
                    comm.send(1, 1, buf, 0, len);
                    comm.send(2, 2, buf, 0, len);
                }
                1 => {
                    comm.recv(Some(0), Some(1), buf, 0, len);
                    os.with_data(comm.proc(), buf, |d| {
                        assert!(d.iter().all(|&b| b == 0xAB))
                    });
                }
                _ => {
                    comm.recv(Some(0), Some(2), buf, 0, len);
                    os.with_data(comm.proc(), buf, |d| {
                        assert!(d.iter().all(|&b| b == 0xAB))
                    });
                }
            }
            comm.barrier();
        });
        // KNEM was used for the cross-socket transfer only: exactly one
        // send cookie was created and destroyed.
        assert_eq!(nem.os().knem_live_cookies(), 0);
    }

    /// The blended policy composes with vectored transfers: the KNEM arm
    /// uses native scatter, the ring arm packs/unpacks, both byte-exact.
    #[test]
    fn dynamic_policy_with_vectored_payloads() {
        let layout = VectorLayout::strided(0, 8 << 10, 24 << 10, 16); // 128 KiB
        let machine = Arc::new(Machine::new(MachineConfig::xeon_e5345()));
        let os = Arc::new(Os::new(Arc::clone(&machine)));
        let nem = Nemesis::new(os, 3, NemesisConfig::with_lmt(LmtSelect::Dynamic));
        // Rank 1 shares rank 0's L2; rank 2 is cross-socket.
        run_simulation(machine, &[0, 1, 4], |p| {
            let comm = nem.attach(p);
            comm.barrier();
            let os = comm.os();
            let me = comm.rank();
            let buf = os.alloc(me, layout.end());
            if me == 0 {
                os.with_data_mut(comm.proc(), buf, |d| d.fill(0x3C));
                os.touch_write(comm.proc(), buf, 0, layout.end());
                comm.sendv(1, 1, buf, &layout);
                comm.sendv(2, 2, buf, &layout);
            } else {
                comm.recvv(Some(0), Some(me as i32), buf, &layout);
                os.with_data(comm.proc(), buf, |d| {
                    for (off, len) in layout.blocks() {
                        assert!(
                            d[off as usize..(off + len) as usize]
                                .iter()
                                .all(|&b| b == 0x3C),
                            "rank {me}"
                        );
                    }
                });
            }
            comm.barrier();
        });
    }

    /// With KNEM unavailable, the blended policy falls back to vmsplice
    /// for non-shared pairs (the §2 deployment discussion).
    #[test]
    fn dynamic_policy_without_knem_uses_vmsplice() {
        let mut cfg = NemesisConfig::with_lmt(LmtSelect::Dynamic);
        cfg.knem_available = false;
        two_ranks(cfg, |comm| {
            let os = comm.os();
            let buf = os.alloc(comm.rank(), 200_000);
            if comm.rank() == 0 {
                fill_pattern(comm, buf, 200_000, 8);
                comm.send(1, 0, buf, 0, 200_000);
            } else {
                comm.recv(Some(0), Some(0), buf, 0, 200_000);
                check_pattern(comm, buf, 200_000, 8);
            }
        });
    }

    /// A message needing more cells than the pool exists must stream
    /// through in fragments and reassemble byte-exactly.
    #[test]
    fn eager_fragmented_when_pool_smaller_than_message() {
        let mut cfg = NemesisConfig::default();
        cfg.cell_payload = 1 << 10;
        cfg.cells_per_proc = 3;
        cfg.eager_max = 64 << 10;
        two_ranks(cfg, |comm| {
            let os = comm.os();
            let buf = os.alloc(comm.rank(), 40 << 10);
            if comm.rank() == 0 {
                fill_pattern(comm, buf, 40 << 10, 17);
                comm.send(1, 4, buf, 0, 40 << 10);
            } else {
                comm.recv(Some(0), Some(4), buf, 0, 40 << 10);
                check_pattern(comm, buf, 40 << 10, 17);
            }
        });
    }

    /// Fragmented messages that arrive unexpected reassemble in a
    /// temporary buffer and deliver when finally matched — including
    /// when the matching receive is posted mid-stream.
    #[test]
    fn eager_fragmented_unexpected_and_out_of_order() {
        let mut cfg = NemesisConfig::default();
        cfg.cell_payload = 1 << 10;
        cfg.cells_per_proc = 2;
        cfg.eager_max = 64 << 10;
        two_ranks(cfg, |comm| {
            let os = comm.os();
            let buf = os.alloc(comm.rank(), 16 << 10);
            let buf2 = os.alloc(comm.rank(), 16 << 10);
            if comm.rank() == 0 {
                fill_pattern(comm, buf, 16 << 10, 3);
                fill_pattern(comm, buf2, 16 << 10, 9);
                comm.send(1, 30, buf, 0, 16 << 10);
                comm.send(1, 31, buf2, 0, 16 << 10);
            } else {
                // Receive the *second* message first: the first must
                // reassemble as unexpected while its cells recycle.
                comm.recv(Some(0), Some(31), buf2, 0, 16 << 10);
                check_pattern(comm, buf2, 16 << 10, 9);
                comm.recv(Some(0), Some(30), buf, 0, 16 << 10);
                check_pattern(comm, buf, 16 << 10, 3);
            }
        });
    }

    /// Vectored payloads also fragment correctly (blocks split across
    /// fragment boundaries).
    #[test]
    fn eager_fragmented_vectored() {
        let mut cfg = NemesisConfig::default();
        cfg.cell_payload = 1 << 10;
        cfg.cells_per_proc = 3;
        cfg.eager_max = 64 << 10;
        // 24 blocks of 700 B with stride 1700: 16.8 KiB total, block
        // boundaries misaligned with the 1 KiB cells.
        let layout = VectorLayout::strided(8, 700, 1700, 24);
        two_ranks(cfg, |comm| {
            let os = comm.os();
            let buf = os.alloc(comm.rank(), layout.end());
            if comm.rank() == 0 {
                os.with_data_mut(comm.proc(), buf, |d| {
                    for (i, (off, len)) in layout.blocks().into_iter().enumerate() {
                        d[off as usize..(off + len) as usize].fill(i as u8 + 1);
                    }
                });
                os.touch_write(comm.proc(), buf, 0, layout.end());
                comm.sendv(1, 6, buf, &layout);
            } else {
                comm.recvv(Some(0), Some(6), buf, &layout);
                os.with_data(comm.proc(), buf, |d| {
                    for (i, (off, len)) in layout.blocks().into_iter().enumerate() {
                        assert!(
                            d[off as usize..(off + len) as usize]
                                .iter()
                                .all(|&b| b == i as u8 + 1),
                            "block {i} corrupt"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn tag_matching_out_of_order() {
        two_ranks(NemesisConfig::default(), |comm| {
            let os = comm.os();
            if comm.rank() == 0 {
                let a = os.alloc(0, 64);
                let b = os.alloc(0, 64);
                os.with_data_mut(comm.proc(), a, |d| d.fill(0xAA));
                os.with_data_mut(comm.proc(), b, |d| d.fill(0xBB));
                comm.send(1, 1, a, 0, 64);
                comm.send(1, 2, b, 0, 64);
            } else {
                let a = os.alloc(1, 64);
                let b = os.alloc(1, 64);
                // Receive tag 2 first, then tag 1.
                comm.recv(Some(0), Some(2), b, 0, 64);
                comm.recv(Some(0), Some(1), a, 0, 64);
                os.with_data(comm.proc(), a, |d| assert!(d.iter().all(|&x| x == 0xAA)));
                os.with_data(comm.proc(), b, |d| assert!(d.iter().all(|&x| x == 0xBB)));
            }
        });
    }

    #[test]
    fn wildcard_source_and_tag() {
        two_ranks(NemesisConfig::default(), |comm| {
            let os = comm.os();
            let buf = os.alloc(comm.rank(), 128);
            if comm.rank() == 0 {
                fill_pattern(comm, buf, 128, 9);
                comm.send(1, 77, buf, 0, 128);
            } else {
                comm.recv(ANY_SOURCE, ANY_TAG, buf, 0, 128);
                check_pattern(comm, buf, 128, 9);
            }
        });
    }

    #[test]
    fn many_messages_fifo_order() {
        // 20 eager messages with the same tag must arrive in order.
        two_ranks(NemesisConfig::default(), |comm| {
            let os = comm.os();
            let buf = os.alloc(comm.rank(), 1024);
            if comm.rank() == 0 {
                for i in 0..20u8 {
                    os.with_data_mut(comm.proc(), buf, |d| d.fill(i));
                    comm.send(1, 3, buf, 0, 1024);
                }
            } else {
                for i in 0..20u8 {
                    comm.recv(Some(0), Some(3), buf, 0, 1024);
                    os.with_data(comm.proc(), buf, |d| {
                        assert!(d.iter().all(|&x| x == i), "message {i} out of order")
                    });
                }
            }
        });
    }

    #[test]
    fn back_to_back_rndv_same_pair_fifo() {
        // Two large messages through the same ring must not interleave.
        for lmt in [LmtSelect::ShmCopy, LmtSelect::Vmsplice] {
            two_ranks(NemesisConfig::with_lmt(lmt), |comm| {
                let os = comm.os();
                if comm.rank() == 0 {
                    let a = os.alloc(0, 200 << 10);
                    let b = os.alloc(0, 200 << 10);
                    os.with_data_mut(comm.proc(), a, |d| d.fill(0x11));
                    os.with_data_mut(comm.proc(), b, |d| d.fill(0x22));
                    let ra = comm.isend(1, 1, a, 0, 200 << 10);
                    let rb = comm.isend(1, 2, b, 0, 200 << 10);
                    comm.waitall(&[ra, rb]);
                } else {
                    let a = os.alloc(1, 200 << 10);
                    let b = os.alloc(1, 200 << 10);
                    let ra = comm.irecv(Some(0), Some(1), a, 0, 200 << 10);
                    let rb = comm.irecv(Some(0), Some(2), b, 0, 200 << 10);
                    comm.waitall(&[ra, rb]);
                    os.with_data(comm.proc(), a, |d| assert!(d.iter().all(|&x| x == 0x11)));
                    os.with_data(comm.proc(), b, |d| assert!(d.iter().all(|&x| x == 0x22)));
                }
            });
        }
    }

    #[test]
    fn bidirectional_sendrecv() {
        two_ranks(NemesisConfig::with_lmt(LmtSelect::ShmCopy), |comm| {
            let os = comm.os();
            let me = comm.rank();
            let other = 1 - me;
            let sbuf = os.alloc(me, 128 << 10);
            let rbuf = os.alloc(me, 128 << 10);
            fill_pattern(comm, sbuf, 128 << 10, me as u8);
            comm.sendrecv(
                other,
                1,
                sbuf,
                0,
                128 << 10,
                Some(other),
                Some(1),
                rbuf,
                0,
                128 << 10,
            );
            check_pattern(comm, rbuf, 128 << 10, other as u8);
        });
    }

    #[test]
    fn deterministic_pingpong() {
        let run = || {
            two_ranks(NemesisConfig::with_lmt(LmtSelect::ShmCopy), |comm| {
                let os = comm.os();
                let buf = os.alloc(comm.rank(), 256 << 10);
                for _ in 0..3 {
                    if comm.rank() == 0 {
                        comm.send(1, 0, buf, 0, 256 << 10);
                        comm.recv(Some(1), Some(0), buf, 0, 256 << 10);
                    } else {
                        comm.recv(Some(0), Some(0), buf, 0, 256 << 10);
                        comm.send(0, 0, buf, 0, 256 << 10);
                    }
                }
            })
            .makespan
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn knem_single_copy_fewer_accesses_than_shm() {
        let accesses = |lmt| {
            let machine = Arc::new(Machine::new(MachineConfig::xeon_e5345()));
            let os = Arc::new(Os::new(Arc::clone(&machine)));
            let nem = Nemesis::new(os, 2, NemesisConfig::with_lmt(lmt));
            let m2 = Arc::clone(&machine);
            run_simulation(machine, &[0, 4], |p| {
                let comm = nem.attach(p);
                let buf = comm.os().alloc(comm.rank(), 1 << 20);
                if comm.rank() == 0 {
                    comm.send(1, 0, buf, 0, 1 << 20);
                } else {
                    comm.recv(Some(0), Some(0), buf, 0, 1 << 20);
                }
            });
            m2.snapshot().total().accesses()
        };
        let two_copy = accesses(LmtSelect::ShmCopy);
        let one_copy = accesses(LmtSelect::Knem(KnemSelect::SyncCpu));
        // 1 MiB = 16384 lines. Two-copy moves each line 4 times (2 reads +
        // 2 writes), single-copy twice.
        assert!(
            two_copy > one_copy + 20_000,
            "two-copy {two_copy} vs single-copy {one_copy}"
        );
    }

    #[test]
    fn concurrency_hint_lowers_auto_threshold() {
        let mut cfg = NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::Auto));
        cfg.collective_hint = true;
        two_ranks(cfg, |comm| {
            if comm.rank() != 0 {
                return;
            }
            // 256 KiB is below the 1 MiB point-to-point threshold…
            let f = comm.resolve_knem(KnemSelect::Auto, 256 << 10, 1);
            assert_eq!(f, KnemFlags::sync_cpu());
            // …but above the hinted threshold for an 8-way collective.
            let f = comm.resolve_knem(KnemSelect::Auto, 256 << 10, 8);
            assert_eq!(f, KnemFlags::async_ioat());
        });
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use crate::config::NemesisConfig;

    #[test]
    fn probe_reports_metadata_without_consuming() {
        tests::two_ranks(NemesisConfig::default(), |comm| {
            let os = comm.os();
            if comm.rank() == 0 {
                let buf = os.alloc(0, 12_345);
                comm.send(1, 9, buf, 0, 12_345);
            } else {
                let info = comm.probe(Some(0), None);
                assert_eq!(info.src, 0);
                assert_eq!(info.tag, 9);
                assert_eq!(info.len, 12_345);
                // Probing again still sees it.
                assert!(comm.iprobe(Some(0), Some(9)).is_some());
                // Size from the probe drives the receive.
                let buf = os.alloc(1, info.len);
                comm.recv(Some(info.src), Some(info.tag), buf, 0, info.len);
                assert!(comm.iprobe(Some(0), Some(9)).is_none());
            }
        });
    }

    #[test]
    fn probe_sees_rendezvous_announcements() {
        tests::two_ranks(
            NemesisConfig::with_lmt(crate::config::LmtSelect::Knem(
                crate::config::KnemSelect::SyncCpu,
            )),
            |comm| {
                let os = comm.os();
                if comm.rank() == 0 {
                    let buf = os.alloc(0, 1 << 20);
                    comm.send(1, 4, buf, 0, 1 << 20);
                } else {
                    let info = comm.probe(ANY_SOURCE, ANY_TAG);
                    assert_eq!(info.len, 1 << 20);
                    let buf = os.alloc(1, info.len);
                    comm.recv(Some(info.src), Some(info.tag), buf, 0, info.len);
                }
            },
        );
    }

    #[test]
    fn iprobe_none_when_no_traffic() {
        tests::two_ranks(NemesisConfig::default(), |comm| {
            if comm.rank() == 1 {
                assert!(comm.iprobe(ANY_SOURCE, ANY_TAG).is_none());
            }
        });
    }
}
