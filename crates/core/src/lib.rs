//! # nemesis-core — the Nemesis communication subsystem
//!
//! A from-scratch reproduction of the MPICH2-Nemesis intranode channel as
//! described in *Cache-Efficient, Intranode, Large-Message MPI
//! Communication with MPICH2-Nemesis* (Buntinas, Goglin, Goodell,
//! Mercier, Moreaud — ICPP 2009), running on the simulated machine of
//! [`nemesis_sim`] and the simulated kernel of [`nemesis_kernel`].
//!
//! The crate provides:
//!
//! * an MPI-like point-to-point API ([`Comm`]: `send`/`recv`,
//!   `isend`/`irecv`, `sendrecv`, requests and `wait`);
//! * the **eager** protocol for small messages (shared cells, two copies);
//! * the **rendezvous / LMT** protocol for large messages over the
//!   pluggable backend layer ([`lmt`]): all four backends the paper
//!   evaluates — double-buffered shared-memory copy (`default LMT`),
//!   pipe + `writev`, pipe + `vmsplice`, and KNEM with synchronous,
//!   kernel-thread-asynchronous and I/OAT-offloaded modes — implement
//!   the [`LmtBackend`] trait, and the rendezvous state machine drives
//!   them only through it;
//! * the `DMAmin` threshold logic of §3.5 behind the
//!   [`ThresholdPolicy`] trait (static, blended dynamic, and the §6
//!   collective-concurrency extension), chosen via [`NemesisConfig`];
//! * MPI collectives built over the point-to-point layer ([`coll`]):
//!   barrier, bcast, reduce, allreduce, gather, scatter, allgather,
//!   alltoall and alltoallv;
//! * typed helpers for moving `u32`/`u64`/`f64` arrays through simulated
//!   buffers ([`datatype`]).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use nemesis_core::{Comm, LmtSelect, Nemesis, NemesisConfig};
//! use nemesis_kernel::Os;
//! use nemesis_sim::{run_simulation, Machine, MachineConfig};
//!
//! let machine = Arc::new(Machine::new(MachineConfig::xeon_e5345()));
//! let os = Arc::new(Os::new(Arc::clone(&machine)));
//! let nem = Nemesis::new(os, 2, NemesisConfig::with_lmt(LmtSelect::ShmCopy));
//! let report = run_simulation(machine, &[0, 1], |p| {
//!     let comm = nem.attach(p);
//!     let buf = comm.os().alloc(comm.rank(), 1 << 20);
//!     if comm.rank() == 0 {
//!         comm.send(1, 0, buf, 0, 1 << 20);
//!     } else {
//!         comm.recv(Some(0), Some(0), buf, 0, 1 << 20);
//!     }
//! });
//! assert!(report.makespan > 0);
//! ```

pub mod coll;
pub mod comm;
pub mod config;
pub mod datatype;
pub mod fault;
pub mod lmt;
pub mod shm;
pub mod vector;

pub use coll::{CommGroup, ReduceOp};
pub use comm::{
    BackendUnavailable, Comm, MessageInfo, Nemesis, PeerHealth, Request, ANY_SOURCE, ANY_TAG,
};
pub use config::{
    BackendSelect, ChunkScheduleSelect, CollAlgSelect, KnemSelect, LmtSelect, NemesisConfig,
    ThresholdSelect,
};
pub use fault::{FaultEngine, FaultEvent, FaultKind, FaultPlan, PacketAction};
pub use lmt::{
    ChunkPipeline, ChunkSchedule, FixedChunk, GeometricGrowth, LearnedChunk, LmtBackend, RailKind,
    ThresholdPolicy, TransferClass, TransferPolicy, TransferSample, Tuner,
};
pub use shm::MAX_RAILS;
pub use vector::VectorLayout;
