//! MPI collective operations over the Nemesis point-to-point layer.
//!
//! The paper evaluates collectives in §4.4 (IMB Alltoall across 8 local
//! processes) and notes in §6 that the collective layer *knows* when many
//! large transfers will happen concurrently and can pass that knowledge
//! down to the LMT threshold logic — implemented here via
//! [`crate::Comm::set_concurrency_hint`], which every collective sets for
//! the duration of the operation when `collective_hint` is enabled.
//!
//! Algorithms are the classic deterministic ones (dissemination barrier,
//! binomial bcast/reduce, ring allgather, pairwise-exchange alltoall), so
//! simulated timings are reproducible run to run.

use nemesis_kernel::BufId;

use crate::comm::Comm;
use crate::datatype::{bytes_of, load_raw, store_raw, Element};

/// Base for internal collective tags (applications should use small
/// non-negative tags).
const COLL_TAG: i32 = 0x4000_0000;

/// Reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

impl<'a> Comm<'a> {
    fn coll_tag(&self, phase: i32) -> i32 {
        // Collectives execute in the same order on every rank, so a
        // sequence-stamped tag prevents cross-operation interference even
        // with deep pipelining.
        let seq = self.coll_seq.get();
        COLL_TAG + ((seq & 0x3FFF) << 8) + phase
    }

    fn next_coll(&self) {
        self.coll_seq.set(self.coll_seq.get().wrapping_add(1));
    }

    fn scratch_buf(&self) -> BufId {
        if let Some(b) = self.scratch.get() {
            return b;
        }
        let b = self.os().alloc(self.rank(), 4096);
        self.scratch.set(Some(b));
        b
    }

    /// Dissemination barrier: `ceil(log2(n))` rounds of 1-byte tokens.
    pub fn barrier(&self) {
        let n = self.size();
        if n == 1 {
            return;
        }
        let me = self.rank();
        let s = self.scratch_buf();
        let mut k = 0;
        let mut dist = 1;
        while dist < n {
            let dst = (me + dist) % n;
            let src = (me + n - dist) % n;
            self.sendrecv(
                dst,
                self.coll_tag(k),
                s,
                0,
                1,
                Some(src),
                Some(self.coll_tag(k)),
                s,
                64,
                1,
            );
            dist <<= 1;
            k += 1;
        }
        self.next_coll();
    }

    /// Binomial-tree broadcast of `buf[off..off+len]` from `root`.
    pub fn bcast(&self, root: usize, buf: BufId, off: u64, len: u64) {
        let n = self.size();
        if n == 1 || len == 0 {
            self.next_coll();
            return;
        }
        let me = self.rank();
        let vrank = (me + n - root) % n;
        let tag = self.coll_tag(0);
        // Receive from parent (if not root).
        let mut mask = 1;
        while mask < n {
            if vrank & mask != 0 {
                let parent = (vrank - mask + root) % n;
                self.recv(Some(parent), Some(tag), buf, off, len);
                break;
            }
            mask <<= 1;
        }
        // Forward to children.
        let mut mask = mask >> 1;
        while mask > 0 {
            if vrank + mask < n {
                let child = (vrank + mask + root) % n;
                self.send(child, tag, buf, off, len);
            }
            mask >>= 1;
        }
        self.next_coll();
    }

    /// Binomial-tree reduction of `n_elems` elements into `root`'s
    /// `rbuf[roff..]`. Every rank contributes `sbuf[soff..]`; `rbuf` must
    /// be distinct from `sbuf`.
    #[allow(clippy::too_many_arguments)] // MPI-style signature
    fn reduce_impl<T: Element>(
        &self,
        root: usize,
        sbuf: BufId,
        soff: u64,
        rbuf: BufId,
        roff: u64,
        n_elems: usize,
        op: impl Fn(T, T) -> T,
    ) {
        let n = self.size();
        let me = self.rank();
        let os = self.os();
        let bytes = bytes_of::<T>(n_elems);
        let tag = self.coll_tag(1);
        // Local accumulator starts as our contribution.
        let mut acc: Vec<T> = load_raw(os, self.proc(), sbuf, soff, n_elems);
        os.touch_read(self.proc(), sbuf, soff, bytes);
        if n > 1 {
            let vrank = (me + n - root) % n;
            let tmp = os.alloc(me, bytes.max(1));
            let mut mask = 1;
            while mask < n {
                if vrank & mask != 0 {
                    // Send accumulator to parent and stop.
                    let parent = (vrank - mask + root) % n;
                    store_raw(os, self.proc(), tmp, 0, &acc);
                    os.touch_write(self.proc(), tmp, 0, bytes);
                    self.send(parent, tag, tmp, 0, bytes);
                    self.next_coll();
                    return;
                }
                let child = vrank + mask;
                if child < n {
                    let child = (child + root) % n;
                    self.recv(Some(child), Some(tag), tmp, 0, bytes);
                    let other: Vec<T> = load_raw(os, self.proc(), tmp, 0, n_elems);
                    os.touch_read(self.proc(), tmp, 0, bytes);
                    for (a, b) in acc.iter_mut().zip(other) {
                        *a = op(*a, b);
                    }
                    // The combine pass writes the accumulator.
                    os.touch_write(self.proc(), tmp, 0, bytes);
                }
                mask <<= 1;
            }
        }
        debug_assert_eq!(me, root);
        store_raw(os, self.proc(), rbuf, roff, &acc);
        os.touch_write(self.proc(), rbuf, roff, bytes);
        self.next_coll();
    }

    /// Reduce `f64` elements to `root`.
    #[allow(clippy::too_many_arguments)] // MPI-style signature
    pub fn reduce_f64(
        &self,
        root: usize,
        sbuf: BufId,
        soff: u64,
        rbuf: BufId,
        roff: u64,
        n_elems: usize,
        op: ReduceOp,
    ) {
        self.reduce_impl::<f64>(root, sbuf, soff, rbuf, roff, n_elems, |a, b| {
            op.apply_f64(a, b)
        });
    }

    /// Reduce `u64` elements to `root`.
    #[allow(clippy::too_many_arguments)] // MPI-style signature
    pub fn reduce_u64(
        &self,
        root: usize,
        sbuf: BufId,
        soff: u64,
        rbuf: BufId,
        roff: u64,
        n_elems: usize,
        op: ReduceOp,
    ) {
        self.reduce_impl::<u64>(root, sbuf, soff, rbuf, roff, n_elems, |a, b| {
            op.apply_u64(a, b)
        });
    }

    /// Allreduce = reduce to rank 0 + broadcast.
    pub fn allreduce_f64(
        &self,
        sbuf: BufId,
        soff: u64,
        rbuf: BufId,
        roff: u64,
        n_elems: usize,
        op: ReduceOp,
    ) {
        self.reduce_f64(0, sbuf, soff, rbuf, roff, n_elems, op);
        self.bcast(0, rbuf, roff, bytes_of::<f64>(n_elems));
    }

    /// Allreduce on `u64`.
    pub fn allreduce_u64(
        &self,
        sbuf: BufId,
        soff: u64,
        rbuf: BufId,
        roff: u64,
        n_elems: usize,
        op: ReduceOp,
    ) {
        self.reduce_u64(0, sbuf, soff, rbuf, roff, n_elems, op);
        self.bcast(0, rbuf, roff, bytes_of::<u64>(n_elems));
    }

    /// Linear gather: every rank's `len` bytes land at
    /// `rbuf[roff + rank*len]` on `root`.
    pub fn gather(&self, root: usize, sbuf: BufId, soff: u64, len: u64, rbuf: BufId, roff: u64) {
        let n = self.size();
        let me = self.rank();
        let tag = self.coll_tag(2);
        if me == root {
            self.os()
                .user_copy(self.proc(), sbuf, soff, rbuf, roff + me as u64 * len, len);
            let reqs: Vec<_> = (0..n)
                .filter(|&r| r != root)
                .map(|r| self.irecv(Some(r), Some(tag), rbuf, roff + r as u64 * len, len))
                .collect();
            self.waitall(&reqs);
        } else {
            self.send(root, tag, sbuf, soff, len);
        }
        self.next_coll();
    }

    /// Linear scatter: `root`'s `sbuf[soff + rank*len]` lands in each
    /// rank's `rbuf[roff..]`.
    pub fn scatter(&self, root: usize, sbuf: BufId, soff: u64, len: u64, rbuf: BufId, roff: u64) {
        let n = self.size();
        let me = self.rank();
        let tag = self.coll_tag(3);
        if me == root {
            let reqs: Vec<_> = (0..n)
                .filter(|&r| r != root)
                .map(|r| self.isend(r, tag, sbuf, soff + r as u64 * len, len))
                .collect();
            self.os()
                .user_copy(self.proc(), sbuf, soff + me as u64 * len, rbuf, roff, len);
            self.waitall(&reqs);
        } else {
            self.recv(Some(root), Some(tag), rbuf, roff, len);
        }
        self.next_coll();
    }

    /// Ring allgather: every rank's `len` bytes end at
    /// `rbuf[roff + rank*len]` on all ranks.
    pub fn allgather(&self, sbuf: BufId, soff: u64, len: u64, rbuf: BufId, roff: u64) {
        let n = self.size();
        let me = self.rank();
        let os = self.os();
        os.user_copy(self.proc(), sbuf, soff, rbuf, roff + me as u64 * len, len);
        if n == 1 {
            self.next_coll();
            return;
        }
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let tag = self.coll_tag(4);
        for step in 0..n - 1 {
            let send_block = (me + n - step) % n;
            let recv_block = (me + n - step - 1) % n;
            self.sendrecv(
                right,
                tag,
                rbuf,
                roff + send_block as u64 * len,
                len,
                Some(left),
                Some(tag),
                rbuf,
                roff + recv_block as u64 * len,
                len,
            );
        }
        self.next_coll();
    }

    /// Inclusive prefix reduction over `u64` lanes (`MPI_Scan`): rank r's
    /// `rbuf` ends up holding the reduction of ranks `0..=r`. NAS IS uses
    /// the scan family to compute global key ranks.
    #[allow(clippy::too_many_arguments)] // MPI-style signature
    pub fn scan_u64(
        &self,
        sbuf: BufId,
        soff: u64,
        rbuf: BufId,
        roff: u64,
        n_elems: usize,
        op: ReduceOp,
    ) {
        self.scan_impl(sbuf, soff, rbuf, roff, n_elems, op, true);
    }

    /// Exclusive prefix reduction (`MPI_Exscan`): rank r receives the
    /// reduction of ranks `0..r`; rank 0's `rbuf` is set to the Sum
    /// identity (zeros). Only `ReduceOp::Sum` has an identity, so other
    /// operators leave rank 0's buffer untouched, as MPI does.
    #[allow(clippy::too_many_arguments)] // MPI-style signature
    pub fn exscan_u64(
        &self,
        sbuf: BufId,
        soff: u64,
        rbuf: BufId,
        roff: u64,
        n_elems: usize,
        op: ReduceOp,
    ) {
        self.scan_impl(sbuf, soff, rbuf, roff, n_elems, op, false);
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_impl(
        &self,
        sbuf: BufId,
        soff: u64,
        rbuf: BufId,
        roff: u64,
        n_elems: usize,
        op: ReduceOp,
        inclusive: bool,
    ) {
        let n = self.size();
        let me = self.rank();
        let os = self.os();
        let bytes = bytes_of::<u64>(n_elems);
        let tag = self.coll_tag(7);
        let mine: Vec<u64> = load_raw(os, self.proc(), sbuf, soff, n_elems);
        os.touch_read(self.proc(), sbuf, soff, bytes);
        // Chain algorithm: receive the prefix of 0..me, combine, forward.
        let prefix: Option<Vec<u64>> = if me > 0 {
            let tmp = os.alloc(me, bytes.max(1));
            self.recv(Some(me - 1), Some(tag), tmp, 0, bytes);
            let p: Vec<u64> = load_raw(os, self.proc(), tmp, 0, n_elems);
            os.touch_read(self.proc(), tmp, 0, bytes);
            Some(p)
        } else {
            None
        };
        let inclusive_val: Vec<u64> = match &prefix {
            Some(p) => mine
                .iter()
                .zip(p)
                .map(|(&a, &b)| op.apply_u64(a, b))
                .collect(),
            None => mine.clone(),
        };
        if me + 1 < n {
            let tmp = os.alloc(me, bytes.max(1));
            store_raw(os, self.proc(), tmp, 0, &inclusive_val);
            os.touch_write(self.proc(), tmp, 0, bytes);
            self.send(me + 1, tag, tmp, 0, bytes);
        }
        if inclusive {
            store_raw(os, self.proc(), rbuf, roff, &inclusive_val);
            os.touch_write(self.proc(), rbuf, roff, bytes);
        } else {
            match prefix {
                Some(p) => {
                    store_raw(os, self.proc(), rbuf, roff, &p);
                    os.touch_write(self.proc(), rbuf, roff, bytes);
                }
                None if op == ReduceOp::Sum => {
                    store_raw(os, self.proc(), rbuf, roff, &vec![0u64; n_elems]);
                    os.touch_write(self.proc(), rbuf, roff, bytes);
                }
                None => {} // no identity: rank 0's buffer is undefined
            }
        }
        self.next_coll();
    }

    /// Pairwise-exchange alltoall: rank `i`'s block `j` —
    /// `sbuf[soff + j*len]` — lands at `rbuf[roff + i*len]` on rank `j`.
    /// This is the operation of Figure 7.
    pub fn alltoall(&self, sbuf: BufId, soff: u64, len: u64, rbuf: BufId, roff: u64) {
        let n = self.size();
        let me = self.rank();
        let os = self.os();
        if self.nem_cfg_collective_hint() {
            self.set_concurrency_hint(n as u32 - 1);
        }
        os.user_copy(self.proc(), sbuf, soff + me as u64 * len, rbuf, roff + me as u64 * len, len);
        let tag = self.coll_tag(5);
        for step in 1..n {
            let dst = (me + step) % n;
            let src = (me + n - step) % n;
            self.sendrecv(
                dst,
                tag,
                sbuf,
                soff + dst as u64 * len,
                len,
                Some(src),
                Some(tag),
                rbuf,
                roff + src as u64 * len,
                len,
            );
        }
        self.set_concurrency_hint(1);
        self.next_coll();
    }

    /// Vector alltoall: rank `i` sends `slens[j]` bytes from
    /// `sbuf[soffs[j]]` to rank `j`, receiving into `rbuf[roffs[i]]`
    /// (which must hold `rlens[i]` bytes — the amount rank `i` sends us).
    pub fn alltoallv(
        &self,
        sbuf: BufId,
        soffs: &[u64],
        slens: &[u64],
        rbuf: BufId,
        roffs: &[u64],
        rlens: &[u64],
    ) {
        let n = self.size();
        let me = self.rank();
        assert!(soffs.len() == n && slens.len() == n && roffs.len() == n && rlens.len() == n);
        let os = self.os();
        if self.nem_cfg_collective_hint() {
            self.set_concurrency_hint(n as u32 - 1);
        }
        debug_assert_eq!(slens[me], rlens[me], "self block mismatch");
        if slens[me] > 0 {
            os.user_copy(self.proc(), sbuf, soffs[me], rbuf, roffs[me], slens[me]);
        }
        let tag = self.coll_tag(6);
        for step in 1..n {
            let dst = (me + step) % n;
            let src = (me + n - step) % n;
            let r = self.irecv(Some(src), Some(tag), rbuf, roffs[src], rlens[src]);
            let s = self.isend(dst, tag, sbuf, soffs[dst], slens[dst]);
            self.wait(r);
            self.wait(s);
        }
        self.set_concurrency_hint(1);
        self.next_coll();
    }

    fn nem_cfg_collective_hint(&self) -> bool {
        self.config().collective_hint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Nemesis;
    use crate::config::{KnemSelect, LmtSelect, NemesisConfig};
    use crate::datatype::{load_raw, store_raw};
    use nemesis_kernel::Os;
    use nemesis_sim::{run_simulation, Machine, MachineConfig};
    use std::sync::Arc;

    fn n_ranks(
        n: usize,
        cfg: NemesisConfig,
        body: impl Fn(&Comm<'_>) + Send + Sync,
    ) -> nemesis_sim::SimReport {
        let machine = Arc::new(Machine::new(MachineConfig::xeon_e5345()));
        let os = Arc::new(Os::new(Arc::clone(&machine)));
        let nem = Nemesis::new(os, n, cfg);
        let placements: Vec<usize> = (0..n).collect();
        run_simulation(machine, &placements, |p| {
            let comm = nem.attach(p);
            body(&comm);
        })
    }

    #[test]
    fn scan_and_exscan_prefixes() {
        n_ranks(5, NemesisConfig::default(), |comm| {
            let os = comm.os();
            let me = comm.rank() as u64;
            let n = 16usize;
            let sbuf = os.alloc(comm.rank(), 8 * n as u64);
            let rbuf = os.alloc(comm.rank(), 8 * n as u64);
            // Rank r contributes lanes [r+1, r+2, ...].
            let vals: Vec<u64> = (0..n as u64).map(|i| me + 1 + i).collect();
            store_raw(os, comm.proc(), sbuf, 0, &vals);
            comm.scan_u64(sbuf, 0, rbuf, 0, n, ReduceOp::Sum);
            let got: Vec<u64> = load_raw(os, comm.proc(), rbuf, 0, n);
            for (i, &g) in got.iter().enumerate() {
                // sum over r in 0..=me of (r + 1 + i)
                let expect: u64 = (0..=me).map(|r| r + 1 + i as u64).sum();
                assert_eq!(g, expect, "scan rank {me} lane {i}");
            }
            comm.exscan_u64(sbuf, 0, rbuf, 0, n, ReduceOp::Sum);
            let got: Vec<u64> = load_raw(os, comm.proc(), rbuf, 0, n);
            for (i, &g) in got.iter().enumerate() {
                let expect: u64 = (0..me).map(|r| r + 1 + i as u64).sum();
                assert_eq!(g, expect, "exscan rank {me} lane {i}");
            }
        });
    }

    #[test]
    fn scan_max_single_rank() {
        n_ranks(1, NemesisConfig::default(), |comm| {
            let os = comm.os();
            let sbuf = os.alloc(0, 16);
            let rbuf = os.alloc(0, 16);
            store_raw(os, comm.proc(), sbuf, 0, &[7u64, 3]);
            comm.scan_u64(sbuf, 0, rbuf, 0, 2, ReduceOp::Max);
            assert_eq!(load_raw::<u64>(os, comm.proc(), rbuf, 0, 2), vec![7, 3]);
        });
    }

    #[test]
    fn barrier_completes_for_various_sizes() {
        for n in [1, 2, 3, 5, 8] {
            n_ranks(n, NemesisConfig::default(), |comm| {
                for _ in 0..3 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn barrier_synchronizes_time() {
        // A rank that computes for 1 ms holds everyone at the barrier.
        let r = n_ranks(4, NemesisConfig::default(), |comm| {
            if comm.rank() == 2 {
                comm.proc().compute(1_000_000_000); // 1 ms
            }
            comm.barrier();
        });
        for t in &r.finish_times {
            assert!(*t >= 1_000_000_000, "all ranks must wait: {t}");
        }
    }

    #[test]
    fn bcast_all_roots_all_sizes() {
        for n in [2, 4, 7] {
            n_ranks(n, NemesisConfig::default(), |comm| {
                let os = comm.os();
                let buf = os.alloc(comm.rank(), 8192);
                for root in 0..comm.size() {
                    if comm.rank() == root {
                        os.with_data_mut(comm.proc(), buf, |d| d.fill(root as u8 + 1));
                    } else {
                        os.with_data_mut(comm.proc(), buf, |d| d.fill(0));
                    }
                    comm.bcast(root, buf, 0, 8192);
                    os.with_data(comm.proc(), buf, |d| {
                        assert!(
                            d.iter().all(|&x| x == root as u8 + 1),
                            "bcast from {root} corrupt on rank {}",
                            comm.rank()
                        );
                    });
                }
            });
        }
    }

    #[test]
    fn bcast_large_uses_lmt() {
        n_ranks(
            4,
            NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::SyncCpu)),
            |comm| {
                let os = comm.os();
                let buf = os.alloc(comm.rank(), 512 << 10);
                if comm.rank() == 0 {
                    os.with_data_mut(comm.proc(), buf, |d| d.fill(0x5A));
                }
                comm.bcast(0, buf, 0, 512 << 10);
                os.with_data(comm.proc(), buf, |d| assert!(d.iter().all(|&x| x == 0x5A)));
            },
        );
    }

    #[test]
    fn reduce_sum_f64() {
        n_ranks(5, NemesisConfig::default(), |comm| {
            let os = comm.os();
            let n_elems = 100;
            let sbuf = os.alloc(comm.rank(), 800);
            let rbuf = os.alloc(comm.rank(), 800);
            let mine: Vec<f64> = (0..n_elems).map(|i| (comm.rank() * 100 + i) as f64).collect();
            store_raw(os, comm.proc(), sbuf, 0, &mine);
            comm.reduce_f64(2, sbuf, 0, rbuf, 0, n_elems, ReduceOp::Sum);
            if comm.rank() == 2 {
                let got: Vec<f64> = load_raw(os, comm.proc(), rbuf, 0, n_elems);
                for (i, v) in got.iter().enumerate() {
                    let expect: f64 = (0..5).map(|r| (r * 100 + i) as f64).sum();
                    assert_eq!(*v, expect, "element {i}");
                }
            }
        });
    }

    #[test]
    fn allreduce_max_u64() {
        n_ranks(6, NemesisConfig::default(), |comm| {
            let os = comm.os();
            let sbuf = os.alloc(comm.rank(), 64);
            let rbuf = os.alloc(comm.rank(), 64);
            store_raw(os, comm.proc(), sbuf, 0, &[comm.rank() as u64 * 7 + 1]);
            comm.allreduce_u64(sbuf, 0, rbuf, 0, 1, ReduceOp::Max);
            let got: Vec<u64> = load_raw(os, comm.proc(), rbuf, 0, 1);
            assert_eq!(got[0], 5 * 7 + 1);
        });
    }

    #[test]
    fn gather_scatter_roundtrip() {
        n_ranks(4, NemesisConfig::default(), |comm| {
            let os = comm.os();
            let n = comm.size();
            let me = comm.rank();
            let block = 1024u64;
            let sbuf = os.alloc(me, block);
            let all = os.alloc(me, block * n as u64);
            let back = os.alloc(me, block);
            os.with_data_mut(comm.proc(), sbuf, |d| d.fill(me as u8 + 10));
            comm.gather(0, sbuf, 0, block, all, 0);
            if me == 0 {
                os.with_data(comm.proc(), all, |d| {
                    for r in 0..n {
                        assert!(d[r * 1024..(r + 1) * 1024]
                            .iter()
                            .all(|&x| x == r as u8 + 10));
                    }
                });
            }
            comm.scatter(0, all, 0, block, back, 0);
            os.with_data(comm.proc(), back, |d| {
                assert!(d.iter().all(|&x| x == me as u8 + 10))
            });
        });
    }

    #[test]
    fn allgather_ring() {
        n_ranks(5, NemesisConfig::default(), |comm| {
            let os = comm.os();
            let me = comm.rank();
            let n = comm.size();
            let block = 2048u64;
            let sbuf = os.alloc(me, block);
            let rbuf = os.alloc(me, block * n as u64);
            os.with_data_mut(comm.proc(), sbuf, |d| d.fill(me as u8 * 3 + 1));
            comm.allgather(sbuf, 0, block, rbuf, 0);
            os.with_data(comm.proc(), rbuf, |d| {
                for r in 0..n {
                    assert!(
                        d[r * 2048..(r + 1) * 2048]
                            .iter()
                            .all(|&x| x == r as u8 * 3 + 1),
                        "rank {me}: block {r} wrong"
                    );
                }
            });
        });
    }

    #[test]
    fn alltoall_small_and_large() {
        for (lmt, block) in [
            (LmtSelect::ShmCopy, 4 << 10),
            (LmtSelect::ShmCopy, 256 << 10),
            (LmtSelect::Knem(KnemSelect::Auto), 256 << 10),
            (LmtSelect::Vmsplice, 128 << 10),
        ] {
            n_ranks(4, NemesisConfig::with_lmt(lmt), |comm| {
                let os = comm.os();
                let me = comm.rank();
                let n = comm.size();
                let block = block as u64;
                let sbuf = os.alloc(me, block * n as u64);
                let rbuf = os.alloc(me, block * n as u64);
                os.with_data_mut(comm.proc(), sbuf, |d| {
                    for j in 0..n {
                        // Block j gets value (me, j)-specific.
                        let v = (me * 16 + j) as u8;
                        d[j * block as usize..(j + 1) * block as usize].fill(v);
                    }
                });
                comm.alltoall(sbuf, 0, block, rbuf, 0);
                os.with_data(comm.proc(), rbuf, |d| {
                    for i in 0..n {
                        let v = (i * 16 + me) as u8;
                        assert!(
                            d[i * block as usize..(i + 1) * block as usize]
                                .iter()
                                .all(|&x| x == v),
                            "rank {me}: block from {i} wrong"
                        );
                    }
                });
            });
        }
    }

    #[test]
    fn alltoallv_uneven() {
        n_ranks(4, NemesisConfig::default(), |comm| {
            let os = comm.os();
            let me = comm.rank();
            let n = comm.size();
            // Rank i sends (i+1)*1000 bytes to each peer j.
            let slen = (me as u64 + 1) * 1000;
            let slens: Vec<u64> = vec![slen; n];
            let soffs: Vec<u64> = (0..n).map(|j| j as u64 * slen).collect();
            let rlens: Vec<u64> = (0..n).map(|i| (i as u64 + 1) * 1000).collect();
            let roffs: Vec<u64> = {
                let mut acc = 0;
                rlens
                    .iter()
                    .map(|l| {
                        let o = acc;
                        acc += l;
                        o
                    })
                    .collect()
            };
            let sbuf = os.alloc(me, slen * n as u64);
            let rbuf = os.alloc(me, rlens.iter().sum::<u64>());
            os.with_data_mut(comm.proc(), sbuf, |d| d.fill(me as u8 + 1));
            comm.alltoallv(sbuf, &soffs, &slens, rbuf, &roffs, &rlens);
            os.with_data(comm.proc(), rbuf, |d| {
                for i in 0..n {
                    let lo = roffs[i] as usize;
                    let hi = lo + rlens[i] as usize;
                    assert!(
                        d[lo..hi].iter().all(|&x| x == i as u8 + 1),
                        "rank {me}: vblock from {i} wrong"
                    );
                }
            });
        });
    }

    #[test]
    fn eight_rank_alltoall_all_lmts_deterministic() {
        let run = |lmt| {
            n_ranks(8, NemesisConfig::with_lmt(lmt), |comm| {
                let os = comm.os();
                let me = comm.rank();
                let block = 128u64 << 10;
                let sbuf = os.alloc(me, block * 8);
                let rbuf = os.alloc(me, block * 8);
                comm.alltoall(sbuf, 0, block, rbuf, 0);
            })
            .makespan
        };
        for lmt in [
            LmtSelect::ShmCopy,
            LmtSelect::Vmsplice,
            LmtSelect::Knem(KnemSelect::SyncCpu),
            LmtSelect::Knem(KnemSelect::AsyncIoat),
        ] {
            assert_eq!(run(lmt), run(lmt), "{lmt:?} nondeterministic");
        }
    }
}
