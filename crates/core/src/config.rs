//! Nemesis configuration: protocol thresholds and LMT backend selection.

use nemesis_sim::Machine;

/// Which KNEM receive mode the receiver requests (§3.2–3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnemSelect {
    /// Synchronous CPU copy inside the receive ioctl.
    SyncCpu,
    /// Asynchronous copy by a kernel thread on the receiver's core.
    AsyncKthread,
    /// Synchronous I/OAT offload (ioctl polls the engine).
    SyncIoat,
    /// Asynchronous I/OAT offload (Figure-2 status write).
    AsyncIoat,
    /// The paper's policy (§3.5): I/OAT (asynchronously, the KNEM
    /// default when I/OAT is used) for messages at least `DMAmin` long,
    /// synchronous CPU copy below.
    Auto,
}

/// Which Large Message Transfer backend rendezvous messages use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmtSelect {
    /// The original Nemesis double-buffered shared-memory copy (two
    /// copies through a ring of copy buffers).
    ShmCopy,
    /// Pipe with `writev` — still two copies, but through kernel pipe
    /// pages (the baseline variant of Figure 3).
    PipeWritev,
    /// Pipe with `vmsplice` — single copy (§3.1).
    Vmsplice,
    /// The KNEM kernel module (§3.2).
    Knem(KnemSelect),
    /// CMA-style `process_vm_readv` (single copy, **no kernel module**
    /// — the answer to §2's deployment concern). The receiver reads the
    /// sender's exposed ranges directly; per-call iovec limits and the
    /// transient page walk are modelled, nothing is pinned.
    Cma,
    /// One transfer striped across `rails` rail engines (rail 0 is
    /// always CMA; further rails take KNEM-with-I/OAT, vmsplice and the
    /// copy ring in that order, subject to availability). Spans are
    /// bandwidth-weighted from the tuner's per-class EWMAs when
    /// learned, equal otherwise. Clamped to `1..=MAX_RAILS`.
    Striped { rails: u8 },
    /// The paper's blended policy (§3.5, §4.1, §6: "no single method is
    /// optimal for all situations, and so a blended approach is
    /// essential"): per destination, use the two-copy shared-memory ring
    /// when the two cores share a cache (where §4.1/§4.2 show it wins),
    /// otherwise KNEM with the automatic `DMAmin` threshold if the
    /// module is loaded, otherwise CMA if available (single copy with no
    /// module), otherwise vmsplice, otherwise the ring. Availability
    /// comes from [`NemesisConfig::knem_available`],
    /// [`NemesisConfig::cma_available`] and
    /// [`NemesisConfig::vmsplice_available`].
    Dynamic,
}

impl LmtSelect {
    /// Short label used by the experiment harness (matches the paper's
    /// legend names).
    pub fn label(&self) -> &'static str {
        match self {
            LmtSelect::ShmCopy => "default LMT",
            LmtSelect::PipeWritev => "vmsplice LMT using writev",
            LmtSelect::Vmsplice => "vmsplice LMT",
            LmtSelect::Knem(KnemSelect::SyncCpu) => "KNEM LMT",
            LmtSelect::Knem(KnemSelect::AsyncKthread) => "KNEM LMT - asynchronous",
            LmtSelect::Knem(KnemSelect::SyncIoat) => "KNEM LMT with I/OAT",
            LmtSelect::Knem(KnemSelect::AsyncIoat) => "KNEM LMT with I/OAT - asynchronous",
            LmtSelect::Knem(KnemSelect::Auto) => "KNEM LMT (auto threshold)",
            LmtSelect::Cma => "CMA LMT",
            LmtSelect::Striped { rails: 0 | 1 } => "striped LMT (1 rail)",
            LmtSelect::Striped { rails: 2 } => "striped LMT (2 rails)",
            LmtSelect::Striped { rails: 3 } => "striped LMT (3 rails)",
            LmtSelect::Striped { rails: _ } => "striped LMT (4 rails)",
            LmtSelect::Dynamic => "dynamic LMT (blended)",
        }
    }
}

/// Which [`ThresholdPolicy`](crate::lmt::ThresholdPolicy) governs the
/// §3.5 `DMAmin` decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThresholdSelect {
    /// Derive the policy from the legacy fields: `dma_min_override`
    /// becomes a static threshold, otherwise the architectural value
    /// applies; `collective_hint` adds concurrency scaling.
    #[default]
    Auto,
    /// Fixed threshold; ignores the machine and any hints.
    Static(u64),
    /// The §3.5 blended dynamic value derived from the machine's cache
    /// architecture.
    Blended,
    /// Blended value, scaled down by the §6 collective concurrency
    /// hint.
    ConcurrencyAware,
    /// Learn the threshold online, per (pair, placement): every LMT
    /// completion feeds the [`tuner`](crate::lmt::tuner), which
    /// maintains an EWMA-smoothed copy-vs-offload crossover with
    /// hysteresis. Until a pair has observed a crossover it falls back
    /// to the architectural value (the learned policy's prior); the
    /// learned value is clamped so it can never sink below
    /// [`NemesisConfig::eager_max`] (the LMT never runs below the
    /// eager/rendezvous switchover).
    Learned,
}

impl ThresholdSelect {
    /// The CI backend-matrix hook: resolve the *default* threshold
    /// policy from the `NEMESIS_THRESHOLD` environment variable, so the
    /// whole tier-1 suite can run once under the static derivation and
    /// once under the learned policy without editing any test.
    /// Unset/`auto`/`static` keep the seed behaviour ([`Auto`]);
    /// `learned` selects [`Learned`]; anything else fails loudly.
    /// Configs that pin `threshold` explicitly are unaffected.
    pub fn from_env() -> Self {
        match std::env::var("NEMESIS_THRESHOLD").as_deref() {
            Err(_) | Ok("") | Ok("auto") | Ok("static") => ThresholdSelect::Auto,
            Ok("learned") => ThresholdSelect::Learned,
            Ok(other) => panic!("NEMESIS_THRESHOLD={other:?} (expected auto | static | learned)"),
        }
    }
}

/// How [`LmtSelect::Dynamic`] resolves its per-pair backend choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSelect {
    /// The paper's rule-based blended policy (§3.5/§4.1: cache-sharing
    /// pairs take the ring below `DMAmin`, everyone else the best
    /// available single-copy engine).
    #[default]
    Dynamic,
    /// Learn the backend choice online: a deterministic per-(pair,
    /// size-class) bandit over the fixed mechanisms (incl. the striped
    /// meta-backend at 2–4 rails), fed by per-transfer bandwidth
    /// observations on the sender. See
    /// [`selector`](crate::lmt::tuner::selector) for the arm table,
    /// exploration schedule, quarantine demotion and placement-change
    /// re-exploration. Only consulted when `lmt` is
    /// [`LmtSelect::Dynamic`]; fixed selections stay fixed.
    LearnedBackend,
}

impl BackendSelect {
    /// The CI backend-matrix hook (the sibling of
    /// [`ThresholdSelect::from_env`]): resolve the *default* `Dynamic`
    /// resolution mode from the `NEMESIS_BACKEND` environment variable.
    /// Unset/`dynamic` keep the rule-based blended policy; `learned`
    /// selects the bandit; anything else fails loudly. Configs that pin
    /// `backend` explicitly are unaffected.
    pub fn from_env() -> Self {
        match std::env::var("NEMESIS_BACKEND").as_deref() {
            Err(_) | Ok("") | Ok("dynamic") => BackendSelect::Dynamic,
            Ok("learned") => BackendSelect::LearnedBackend,
            Ok(other) => panic!("NEMESIS_BACKEND={other:?} (expected dynamic | learned)"),
        }
    }
}

/// Which algorithm family each collective operation runs (see
/// [`crate::coll`] for the algorithms behind both arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollAlgSelect {
    /// The classic fixed algorithms: binomial bcast/reduce, ring
    /// allgather, pairwise-exchange alltoall.
    #[default]
    Fixed,
    /// The alternate family: chain-segmented pipelined bcast, linear
    /// pinned-order reduce, Bruck allgather, scattered alltoall.
    Alternate,
    /// Learn the choice online, per (collective, group-size class,
    /// message class): another deterministic bandit in the
    /// [`tuner`](crate::lmt::tuner), credited from whole-operation
    /// completion times the same way backend arms are credited from
    /// receiver elapsed. Selections are sequence-memoized so every
    /// member of a group resolves the same arm for the same operation.
    Learned,
}

impl CollAlgSelect {
    /// The CI matrix hook (the sibling of [`ThresholdSelect::from_env`]):
    /// resolve the *default* collective algorithm family from the
    /// `NEMESIS_COLL_ALG` environment variable. Unset/`auto`/`fixed`
    /// keep the classic algorithms; `alternate` flips every collective
    /// to its second algorithm; `learned` selects the bandit; anything
    /// else fails loudly. Configs that pin `coll_alg` explicitly are
    /// unaffected.
    pub fn from_env() -> Self {
        match std::env::var("NEMESIS_COLL_ALG").as_deref() {
            Err(_) | Ok("") | Ok("auto") | Ok("fixed") => CollAlgSelect::Fixed,
            Ok("alternate") => CollAlgSelect::Alternate,
            Ok("learned") => CollAlgSelect::Learned,
            Ok(other) => {
                panic!("NEMESIS_COLL_ALG={other:?} (expected fixed | alternate | learned)")
            }
        }
    }
}

/// Which chunk schedule drives the [`ChunkPipeline`](crate::lmt::ChunkPipeline)
/// of streaming LMT wires (see [`ChunkSchedule`](crate::lmt::ChunkSchedule)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkScheduleSelect {
    /// Geometric growth from `lmt_chunk_start` to the backend's
    /// preferred chunk (the PR-2 adaptive default).
    #[default]
    Adaptive,
    /// Constant full-ceiling chunks (the seed's fixed-size chunking —
    /// the baseline the paper's steady-state bandwidth tables assume).
    Fixed,
    /// Geometric growth toward the per-(pair, placement) sweet spot the
    /// [`tuner`](crate::lmt::tuner) learns from per-chunk timings,
    /// falling back to the backend's preferred chunk until one is
    /// learned.
    Learned,
}

/// Tunables of the Nemesis communication subsystem.
#[derive(Debug, Clone)]
pub struct NemesisConfig {
    /// Messages strictly larger than this use the LMT (rendezvous)
    /// protocol; the paper's MPICH2 default is 64 KiB (§3.5).
    pub eager_max: u64,
    /// LMT backend.
    pub lmt: LmtSelect,
    /// Override for the `DMAmin` I/OAT threshold; `None` derives it from
    /// the machine's cache architecture (§3.5).
    pub dma_min_override: Option<u64>,
    /// Payload bytes per eager cell.
    pub cell_payload: u64,
    /// Eager cells per process.
    pub cells_per_proc: usize,
    /// Copy-buffer ("ring") chunk size for the shared-memory LMT — the
    /// slot capacity, and therefore the ceiling of the adaptive chunk
    /// schedule on that wire.
    pub ring_chunk: u64,
    /// Number of copy buffers per pair — 2 is the double-buffering the
    /// paper describes (§2).
    pub ring_bufs: usize,
    /// First chunk size of the adaptive LMT pipeliner: transfers start
    /// with chunks this small (fast time-to-first-byte, §2's
    /// chunk-against-chunk overlap kicks in immediately) and double
    /// toward the backend's `preferred_chunk` sweet spot.
    pub lmt_chunk_start: u64,
    /// Receive-queue depth (envelopes) per process.
    pub queue_slots: usize,
    /// Envelopes the progress loop drains per queue poll. Batching
    /// amortises the control-line (head pointer) update: one charge per
    /// batch instead of one per envelope.
    pub progress_batch: usize,
    /// Spin cap for busy-wait backoff loops: up to `2^backoff_spin_cap`
    /// busy iterations per step before a waiter starts yielding. The
    /// simulated stack polls in virtual time and does not spin, but the
    /// real-thread mirror does — the `nemesis` facade crate bridges this
    /// field into `nemesis_rt::RtConfig::spin_limit` so both stacks tune
    /// from one configuration.
    pub backoff_spin_cap: u32,
    /// §6 future-work extension: when the collective layer announces that
    /// many large transfers will occur concurrently, divide `DMAmin` by
    /// the announced concurrency (Alltoall makes I/OAT profitable near
    /// 200 KiB instead of 1 MiB, §4.4).
    pub collective_hint: bool,
    /// Whether the KNEM module is loaded (§2: "deploying such a
    /// nonstandard kernel module on a system requires administrative
    /// privileges"). Consulted by [`LmtSelect::Dynamic`] and the
    /// striped rail composition; a *fixed* `Knem` selection with the
    /// module absent is a typed resolution error
    /// ([`crate::comm::BackendUnavailable`]), never a silent fallback.
    pub knem_available: bool,
    /// Whether the kernel offers `process_vm_readv` (Linux ≥ 3.2).
    /// Consulted by [`LmtSelect::Dynamic`]; required by
    /// [`LmtSelect::Striped`] (rail 0 anchors the stripe set).
    pub cma_available: bool,
    /// Whether the kernel offers `vmsplice` (Linux ≥ 2.6.17). Consulted
    /// by [`LmtSelect::Dynamic`].
    pub vmsplice_available: bool,
    /// Deterministic fault injection: the virtual-time fault schedule
    /// the universe's [`FaultEngine`](crate::fault::FaultEngine) arms
    /// (rail aborts, CMA window revocation, dropped/duplicated
    /// RTS/DONE packets, peer stalls, slow rails — see
    /// [`crate::fault`] for the event classes and the
    /// `NEMESIS_FAULT_PLAN` grammar this field defaults from).
    /// `None` = no injection *and* no recovery bookkeeping: the
    /// fault-free path stays bit-identical to a plan-less build.
    pub fault_plan: Option<crate::fault::FaultPlan>,
    /// Base rendezvous retry deadline: with a fault plan loaded, a
    /// sender whose transfer has made no progress for this long
    /// re-announces its RTS (capped exponential backoff), and a
    /// receiver re-sends unacknowledged DONEs on the same clock;
    /// missing it twice marks the peer Suspect. Virtual picoseconds;
    /// the default (20 ms) sits far above any healthy rendezvous gap
    /// but well under the progress watchdog.
    pub retry_deadline_ps: u64,
    /// Which `DMAmin` threshold policy to build (see
    /// [`NemesisConfig::threshold_policy`]).
    pub threshold: ThresholdSelect,
    /// Which chunk schedule streaming LMT wires pipeline with.
    pub chunk_schedule: ChunkScheduleSelect,
    /// How [`LmtSelect::Dynamic`] resolves per pair: the rule-based
    /// blended policy, or the learned backend selector.
    pub backend: BackendSelect,
    /// Which algorithm family the collectives run: the classic fixed
    /// algorithms, the alternate family, or the learned per-(group
    /// size, message class) bandit.
    pub coll_alg: CollAlgSelect,
    /// Optional warm-start for the learned state: a snapshot produced
    /// by a previous universe's
    /// [`Tuner::export_snapshot`](crate::lmt::Tuner::export_snapshot)
    /// (reachable as `nem.policy().export_snapshot()`). Imported into
    /// the tuner at construction when any decision is learned, so
    /// `DMAmin`, chunk sweet spots, rail-kind bandwidths and selector
    /// cells persist across universes instead of re-converging from
    /// scratch.
    pub tuner_snapshot: Option<String>,
    /// Snapshot *file* the learned state persists through: loaded at
    /// universe construction if the file exists (an explicit
    /// [`tuner_snapshot`](Self::tuner_snapshot) string wins over the
    /// file), written back when the universe is torn down. Defaults
    /// from the `NEMESIS_TUNER_SNAPSHOT` environment variable so a CI
    /// job or long-running deployment can carry `DMAmin`/chunk/selector
    /// state across runs without code changes.
    pub tuner_snapshot_path: Option<String>,
}

impl Default for NemesisConfig {
    fn default() -> Self {
        Self {
            eager_max: 64 << 10,
            lmt: LmtSelect::ShmCopy,
            dma_min_override: None,
            cell_payload: 16 << 10,
            cells_per_proc: 32,
            ring_chunk: crate::lmt::shm_copy::RING_PREFERRED,
            ring_bufs: 2,
            lmt_chunk_start: 4 << 10,
            queue_slots: 512,
            progress_batch: 32,
            backoff_spin_cap: 6,
            collective_hint: false,
            knem_available: true,
            cma_available: true,
            vmsplice_available: true,
            fault_plan: crate::fault::FaultPlan::from_env(),
            retry_deadline_ps: 20_000_000_000,
            threshold: ThresholdSelect::from_env(),
            chunk_schedule: ChunkScheduleSelect::default(),
            backend: BackendSelect::from_env(),
            coll_alg: CollAlgSelect::from_env(),
            tuner_snapshot: None,
            tuner_snapshot_path: tuner_snapshot_path_from_env(),
        }
    }
}

/// The persistence sibling of [`ThresholdSelect::from_env`]: resolve
/// the default snapshot file from `NEMESIS_TUNER_SNAPSHOT` (unset or
/// empty = no persistence). Configs that pin `tuner_snapshot_path`
/// explicitly are unaffected.
pub fn tuner_snapshot_path_from_env() -> Option<String> {
    std::env::var("NEMESIS_TUNER_SNAPSHOT")
        .ok()
        .filter(|s| !s.is_empty())
}

impl NemesisConfig {
    /// Convenience constructor: defaults with a given LMT.
    pub fn with_lmt(lmt: LmtSelect) -> Self {
        Self {
            lmt,
            ..Self::default()
        }
    }

    /// Build the configured `DMAmin` policy object (see
    /// [`crate::lmt::policy`] for the implementations).
    pub fn threshold_policy(&self) -> Box<dyn crate::lmt::ThresholdPolicy + Send + Sync> {
        crate::lmt::policy::policy_for(self)
    }

    /// Effective `DMAmin` threshold on `machine` under the configured
    /// policy, given a collective concurrency hint.
    pub fn dma_min(&self, machine: &Machine, concurrent_hint: usize) -> u64 {
        self.threshold_policy().dma_min(machine, concurrent_hint)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;
    use nemesis_sim::MachineConfig;

    #[test]
    fn default_thresholds_match_paper() {
        let c = NemesisConfig::default();
        assert_eq!(c.eager_max, 64 << 10);
        assert_eq!(c.ring_bufs, 2, "double buffering");
        let m = Machine::new(MachineConfig::xeon_e5345());
        assert_eq!(c.dma_min(&m, 1), 1 << 20);
    }

    #[test]
    fn dma_min_override_wins() {
        let mut c = NemesisConfig::default();
        c.threshold = ThresholdSelect::Auto; // pin: Learned ignores the override
        c.dma_min_override = Some(123);
        let m = Machine::new(MachineConfig::xeon_e5345());
        assert_eq!(c.dma_min(&m, 1), 123);
    }

    #[test]
    fn collective_hint_scales_threshold() {
        let mut c = NemesisConfig::default();
        c.collective_hint = true;
        let m = Machine::new(MachineConfig::xeon_e5345());
        // 8-way alltoall: 1 MiB / 8 = 128 KiB — close to the ~200 KiB the
        // paper observes in §4.4.
        assert_eq!(c.dma_min(&m, 8), 128 << 10);
        // Without the hint flag, the hint is ignored.
        c.collective_hint = false;
        assert_eq!(c.dma_min(&m, 8), 1 << 20);
    }

    #[test]
    fn labels_are_paper_legends() {
        assert_eq!(LmtSelect::ShmCopy.label(), "default LMT");
        assert_eq!(LmtSelect::Vmsplice.label(), "vmsplice LMT");
        assert_eq!(
            LmtSelect::Knem(KnemSelect::SyncIoat).label(),
            "KNEM LMT with I/OAT"
        );
    }
}
