//! Client-side backend-health tracking: the serving mirror of the
//! simulated transport's peer-health machine (`nemesis_core::comm`,
//! PR 7), driven by wall-clock response timeouts instead of missed
//! retry deadlines. Same state vocabulary, same shape:
//!
//! `Healthy → Suspect` on the first timed-out request, `Suspect →
//! Quarantined` on the second strike, `Quarantined → Probing` once the
//! holdoff expires (the router then risks a single live request on the
//! peer), and any response from the worker resets it to `Healthy`.
//!
//! Each client tracks health independently — like the sim's machine,
//! which is per-observer — so a worker that only misbehaves toward one
//! client is not globally condemned, and no cross-thread health state
//! contends on the submit path.

/// Health of one worker as seen by one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    Healthy,
    /// One strike: still routable, but under suspicion.
    Suspect,
    /// Two strikes: not routable until the holdoff expires.
    Quarantined,
    /// Holdoff expired: one in-flight probe request allowed.
    Probing,
}

#[derive(Debug, Clone)]
struct WorkerHealth {
    state: WorkerState,
    /// Wall-clock ns (client epoch) when quarantine was entered.
    quarantined_at: u64,
    /// Wall-clock ns (client epoch) of the strike that made it Suspect.
    suspected_at: u64,
    /// A probe request is in flight (at most one).
    probe_inflight: bool,
}

/// The per-client health table + routing policy over `n` workers.
#[derive(Debug)]
pub struct HealthTable {
    workers: Vec<WorkerHealth>,
    holdoff_ns: u64,
    /// Round-robin cursor for routing.
    cursor: usize,
    /// Suspect→Quarantined transitions (diagnostics).
    quarantines: u64,
}

impl HealthTable {
    pub fn new(n: usize, holdoff_ns: u64) -> Self {
        Self {
            workers: vec![
                WorkerHealth {
                    state: WorkerState::Healthy,
                    quarantined_at: 0,
                    suspected_at: 0,
                    probe_inflight: false,
                };
                n
            ],
            holdoff_ns,
            cursor: 0,
            quarantines: 0,
        }
    }

    pub fn state(&self, w: usize) -> WorkerState {
        self.workers[w].state
    }

    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// A response arrived from worker `w`: full reinstatement.
    pub fn on_response(&mut self, w: usize) {
        self.workers[w].state = WorkerState::Healthy;
        self.workers[w].probe_inflight = false;
    }

    /// A request to worker `w` timed out at `now_ns`: advance the
    /// strike machine.
    pub fn on_timeout(&mut self, w: usize, now_ns: u64) {
        let h = &mut self.workers[w];
        match h.state {
            WorkerState::Healthy => {
                h.state = WorkerState::Suspect;
                h.suspected_at = now_ns;
            }
            WorkerState::Suspect | WorkerState::Probing => {
                h.state = WorkerState::Quarantined;
                h.quarantined_at = now_ns;
                h.probe_inflight = false;
                self.quarantines += 1;
            }
            WorkerState::Quarantined => {}
        }
    }

    /// A request routed to a probing worker never made it onto the wire
    /// (shed at admission): give the probe slot back so the next route
    /// can retry it.
    pub fn probe_aborted(&mut self, w: usize) {
        if self.workers[w].state == WorkerState::Probing {
            self.workers[w].probe_inflight = false;
        }
    }

    /// Release expired quarantines into `Probing`, and forgive stale
    /// single strikes (call once per poll tick; cheap — one pass over
    /// a handful of workers). Forgiveness matters because the router
    /// starves a Suspect worker while any Healthy peer exists: without
    /// decay, a worker struck once by a transient blip would carry no
    /// traffic — so never answer, so never be reinstated — and the
    /// fleet would be permanently one worker smaller.
    pub fn tick(&mut self, now_ns: u64) {
        for h in &mut self.workers {
            match h.state {
                WorkerState::Quarantined
                    if now_ns.saturating_sub(h.quarantined_at) >= self.holdoff_ns =>
                {
                    h.state = WorkerState::Probing;
                    h.probe_inflight = false;
                }
                WorkerState::Suspect
                    if now_ns.saturating_sub(h.suspected_at) >= self.holdoff_ns =>
                {
                    h.state = WorkerState::Healthy;
                }
                _ => {}
            }
        }
    }

    /// Pick the worker for the next request: round-robin over routable
    /// workers, preferring `Healthy` peers, then `Suspect` ones; a
    /// `Probing` peer is eligible for exactly one in-flight probe.
    /// When *everything* is quarantined the router degrades to plain
    /// round-robin over all workers rather than wedging — requests
    /// must keep moving so responses can rehabilitate someone.
    pub fn route(&mut self, now_ns: u64) -> usize {
        self.tick(now_ns);
        let n = self.workers.len();
        // Pass 1: a probe-eligible peer gets the next request. This
        // runs *before* the healthy pass — otherwise a probing worker
        // would only ever see traffic once every healthy worker was
        // also dark, and nothing would ever rehabilitate.
        for k in 0..n {
            let w = (self.cursor + k) % n;
            if self.workers[w].state == WorkerState::Probing && !self.workers[w].probe_inflight {
                self.workers[w].probe_inflight = true;
                self.cursor = (w + 1) % n;
                return w;
            }
        }
        // Pass 2: Healthy only. Pass 3: fall back to Suspect. The
        // split matters for the tail: one strike is already enough
        // signal to steer *fresh* arrivals elsewhere — folding Suspect
        // into this pass would keep feeding a stalled worker new
        // requests (each eating a full timeout) until the second
        // strike finally quarantined it.
        for want_suspect in [false, true] {
            for k in 0..n {
                let w = (self.cursor + k) % n;
                let hit = match self.workers[w].state {
                    WorkerState::Healthy => !want_suspect,
                    WorkerState::Suspect => want_suspect,
                    _ => false,
                };
                if hit {
                    self.cursor = (w + 1) % n;
                    return w;
                }
            }
        }
        // Pass 4: everyone is dark — keep traffic flowing.
        let w = self.cursor % n;
        self.cursor = (w + 1) % n;
        w
    }

    /// Pick a worker for *re-routing* a timed-out request: like
    /// [`HealthTable::route`] but never the worker it just failed on
    /// (unless it is the only one).
    pub fn route_away_from(&mut self, avoid: usize, now_ns: u64) -> usize {
        let n = self.workers.len();
        if n == 1 {
            return avoid;
        }
        for _ in 0..n {
            let w = self.route(now_ns);
            if w != avoid {
                return w;
            }
        }
        (avoid + 1) % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_strikes_quarantine_then_probe_then_reinstate() {
        let mut t = HealthTable::new(2, 1000);
        assert_eq!(t.state(0), WorkerState::Healthy);
        t.on_timeout(0, 10);
        assert_eq!(t.state(0), WorkerState::Suspect);
        t.on_timeout(0, 20);
        assert_eq!(t.state(0), WorkerState::Quarantined);
        assert_eq!(t.quarantines(), 1);
        // While quarantined, the router avoids worker 0 entirely.
        for _ in 0..8 {
            assert_eq!(t.route(100), 1);
        }
        // Holdoff expiry opens exactly one probe slot.
        t.tick(20 + 1000);
        assert_eq!(t.state(0), WorkerState::Probing);
        let mut saw0 = 0;
        for _ in 0..8 {
            if t.route(20 + 1000) == 0 {
                saw0 += 1;
            }
        }
        assert_eq!(saw0, 1, "exactly one in-flight probe");
        // The probe answering reinstates the worker.
        t.on_response(0);
        assert_eq!(t.state(0), WorkerState::Healthy);
        let hits0 = (0..8).filter(|_| t.route(3000) == 0).count();
        assert_eq!(hits0, 4, "healthy workers share round-robin");
    }

    #[test]
    fn failed_probe_requarantines() {
        let mut t = HealthTable::new(2, 1000);
        t.on_timeout(0, 0);
        t.on_timeout(0, 0);
        t.tick(1000);
        assert_eq!(t.state(0), WorkerState::Probing);
        t.on_timeout(0, 1500);
        assert_eq!(t.state(0), WorkerState::Quarantined);
        assert_eq!(t.quarantines(), 2);
    }

    #[test]
    fn all_dark_still_routes() {
        let mut t = HealthTable::new(2, u64::MAX);
        for w in 0..2 {
            t.on_timeout(w, 0);
            t.on_timeout(w, 0);
        }
        // Both quarantined forever: traffic must still flow.
        let picks: Vec<usize> = (0..4).map(|_| t.route(10)).collect();
        assert!(picks.contains(&0) && picks.contains(&1));
    }

    #[test]
    fn one_strike_diverts_fresh_traffic_while_a_healthy_worker_exists() {
        let mut t = HealthTable::new(2, 1000);
        t.on_timeout(0, 10);
        assert_eq!(t.state(0), WorkerState::Suspect);
        // Suspect is still routable in principle, but never preferred
        // over a healthy peer.
        for _ in 0..8 {
            assert_eq!(t.route(20), 1);
        }
        // With the healthy peer struck too, the suspect pass kicks in
        // and traffic keeps flowing to both.
        t.on_timeout(1, 30);
        let picks: Vec<usize> = (0..4).map(|_| t.route(40)).collect();
        assert!(picks.contains(&0) && picks.contains(&1));
    }

    #[test]
    fn a_single_strike_is_forgiven_after_the_holdoff() {
        let mut t = HealthTable::new(2, 1000);
        t.on_timeout(0, 10);
        assert_eq!(t.state(0), WorkerState::Suspect);
        // Starved of traffic by the healthy peer, the suspect worker
        // can never answer its way back — the holdoff must do it.
        t.tick(10 + 1000);
        assert_eq!(t.state(0), WorkerState::Healthy);
        let hits0 = (0..8).filter(|_| t.route(2000) == 0).count();
        assert_eq!(hits0, 4, "forgiven worker shares round-robin again");
    }

    #[test]
    fn reroute_avoids_the_failed_worker() {
        let mut t = HealthTable::new(3, 1000);
        for _ in 0..6 {
            assert_ne!(t.route_away_from(1, 0), 1);
        }
    }
}
