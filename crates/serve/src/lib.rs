//! # nemesis-serve — a request/response serving facade over the rt stack
//!
//! Every number the stack reports below this layer is bandwidth or
//! message rate; this crate measures what a *user* would feel. Client
//! rank-threads replay bursty MMPP traffic against worker ranks
//! **open-loop** — each request fires at its pre-generated arrival
//! timestamp whether or not earlier responses came back (see
//! [`nemesis_workloads::trace::mmpp_arrivals_ns`] for why a closed loop
//! fabricates flat tails) — and every enqueue→response latency lands in
//! an HDR-style log-bucketed histogram ([`LatencyHistogram`]).
//!
//! The moving parts:
//!
//! * **Admission batching** — due arrivals are grouped per worker and
//!   submitted through [`RtComm::try_send_batch`], which stops at the
//!   first full queue so the admitted stream stays per-pair FIFO.
//! * **Bounded backpressure** — a rejected head-of-line request retries
//!   under capped exponential backoff up to `retry_limit` attempts and
//!   is then *shed*: counted in [`ServeReport::shed`], its latency slot
//!   abandoned. Nothing is ever dropped silently.
//! * **Graceful degradation** — a per-client [`HealthTable`] mirrors
//!   the simulated transport's peer-health machine (Healthy → Suspect →
//!   Quarantined → Probing); requests outstanding on a worker that
//!   stops answering are re-routed through healthy ranks, and the
//!   quarantined worker is re-probed after a holdoff. Worker stalls are
//!   injected from the same `NEMESIS_FAULT_PLAN` grammar the simulated
//!   stack uses (`stall@…:rank=…,for=…`), reinterpreting the plan's
//!   virtual picoseconds as wall-clock nanoseconds.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use nemesis_core::fault::{FaultKind, FaultPlan};
use nemesis_rt::comm::INLINE_MAX;
use nemesis_rt::{run_rt_cfg, RtComm, RtConfig, RtLmt};

pub mod health;
pub mod hist;

pub use health::{HealthTable, WorkerState};
pub use hist::LatencyHistogram;

/// Request tag (client → worker).
const TAG_REQ: i32 = 101;
/// Response tag (worker → client).
const TAG_RESP: i32 = 102;
/// Shutdown tag (coordinator client → workers).
const TAG_STOP: i32 = 103;
/// Client-completion tag (clients → coordinator client).
const TAG_CDONE: i32 = 104;

/// Per-worker batch cap for one admission round.
const SUBMIT_BATCH: usize = 32;

/// Service configuration. Ranks `0..workers` are workers, ranks
/// `workers..workers+clients` are clients.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub workers: usize,
    pub clients: usize,
    /// Per-client open-loop arrival timestamps (ns from the client's
    /// epoch, sorted). `arrivals.len()` must equal `clients`.
    pub arrivals: Vec<Vec<u64>>,
    /// Nominal trace span in ns (offered-rate denominator).
    pub span_ns: u64,
    /// Request payload bytes (clamped to `10..=INLINE_MAX`; the first
    /// 10 carry the request id and the client rank).
    pub payload: usize,
    /// Synthetic per-request service time at the worker (0 = pure echo).
    pub service_ns: u64,
    /// Receive-queue capacity per rank (the admission bound).
    pub queue_capacity: usize,
    /// Head-of-line `QueueFull` retries before a request is shed.
    pub retry_limit: u32,
    /// Base/cap of the capped exponential retry backoff, in ns.
    pub retry_base_ns: u64,
    pub retry_cap_ns: u64,
    /// An admitted request unanswered for this long marks its worker
    /// (strike 1 = Suspect, strike 2 = Quarantined) and is re-routed.
    pub suspect_after_ns: u64,
    /// Quarantine holdoff before a worker is re-probed.
    pub holdoff_ns: u64,
    /// How long a client keeps draining after its last arrival before
    /// abandoning unanswered requests.
    pub drain_timeout_ns: u64,
    /// Worker stall schedule. `None` falls back to `NEMESIS_FAULT_PLAN`
    /// (only `stall` events apply to the serving layer).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            clients: 2,
            arrivals: Vec::new(),
            span_ns: 0,
            payload: 64,
            service_ns: 0,
            queue_capacity: 512,
            retry_limit: 16,
            retry_base_ns: 2_000,
            retry_cap_ns: 200_000,
            suspect_after_ns: 5_000_000,
            holdoff_ns: 10_000_000,
            drain_timeout_ns: 2_000_000_000,
            fault_plan: None,
        }
    }
}

impl ServeConfig {
    /// A config whose clients each replay an independent MMPP arrival
    /// stream (same chain parameters, decorrelated seeds).
    #[allow(clippy::too_many_arguments)] // the MMPP parameters are a unit
    pub fn with_mmpp(
        workers: usize,
        clients: usize,
        steps: u32,
        step_ns: u64,
        p_on: f64,
        p_off: f64,
        rate_on: f64,
        seed: u64,
    ) -> Self {
        let arrivals = (0..clients)
            .map(|i| {
                nemesis_workloads::trace::mmpp_arrivals_ns(
                    steps,
                    step_ns,
                    p_on,
                    p_off,
                    rate_on,
                    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                )
            })
            .collect();
        Self {
            workers,
            clients,
            arrivals,
            span_ns: steps as u64 * step_ns,
            ..Self::default()
        }
    }
}

/// What one service run did, merged across clients.
#[derive(Debug)]
pub struct ServeReport {
    /// Scheduled arrivals across all clients.
    pub offered: u64,
    /// Requests whose response was received (histogram samples).
    pub completed: u64,
    /// Requests dropped by the admission policy after `retry_limit`
    /// `QueueFull` rejections.
    pub shed: u64,
    /// Re-submissions of timed-out requests through another worker.
    pub rerouted: u64,
    /// Requests still unanswered at the drain deadline.
    pub abandoned: u64,
    /// Suspect→Quarantined transitions across all clients.
    pub quarantines: u64,
    /// Head-of-line `QueueFull` retry attempts.
    pub retry_attempts: u64,
    /// Nominal trace span (offered-rate denominator), ns.
    pub span_ns: u64,
    /// Longest client wall-clock, arrival replay + drain, ns.
    pub elapsed_ns: u64,
    /// Enqueue→response latency over completed requests, where
    /// "enqueue" is the request's *scheduled arrival* — admission
    /// queueing is part of what the user feels.
    pub hist: LatencyHistogram,
}

impl ServeReport {
    /// Offered load over the nominal trace span, requests/s.
    pub fn offered_rps(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.offered as f64 / (self.span_ns as f64 * 1e-9)
        }
    }

    /// Achieved goodput over the same span (completions are attributed
    /// to the trace span, not the drain tail — a run that needs a long
    /// drain to finish earns its low rate).
    pub fn achieved_rps(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.completed as f64 / (self.span_ns as f64 * 1e-9)
        }
    }
}

/// An admitted or to-be-admitted request.
struct Pending {
    scheduled_ns: u64,
    worker: usize,
    /// 0 until actually admitted to the queue (timeouts only tick for
    /// admitted requests).
    sent_ns: u64,
}

struct BacklogEntry {
    req_id: u64,
    attempts: u32,
}

#[derive(Default)]
struct ClientStats {
    offered: u64,
    shed: u64,
    rerouted: u64,
    abandoned: u64,
    quarantines: u64,
    retry_attempts: u64,
    elapsed_ns: u64,
    hist: LatencyHistogram,
}

/// The stall windows of `rank` under `plan`, as wall-clock ns windows
/// (the plan grammar's virtual picoseconds reinterpreted 1000:1 — a
/// `stall@2ms:…for=10ms` plan means the same milliseconds here).
fn stall_windows_ns(plan: &FaultPlan, rank: usize) -> Vec<(u64, u64)> {
    plan.events
        .iter()
        .filter_map(|e| match e.kind {
            FaultKind::Stall { rank: r, dur } if r == rank => {
                let from = e.at / 1000;
                let until = if dur == u64::MAX {
                    u64::MAX
                } else {
                    e.at.saturating_add(dur) / 1000
                };
                Some((from, until.max(from)))
            }
            _ => None,
        })
        .collect()
}

fn worker_loop(comm: &mut RtComm, cfg: &ServeConfig, stalls: &[(u64, u64)]) {
    let me = comm.rank();
    let epoch = Instant::now();
    let mut buf = [0u8; INLINE_MAX];
    let mut tiny = [0u8; 8];
    loop {
        let now = epoch.elapsed().as_nanos() as u64;
        if let Some(&(_, until)) = stalls.iter().find(|&&(f, u)| now >= f && now < u) {
            // Stalled: stop draining requests. STOP stays deliverable in
            // 1 ms slices — teardown must terminate even a forever-stall
            // (the real-world analogue is the process being killed).
            if comm.try_recv(None, Some(TAG_STOP), &mut tiny).is_some() {
                return;
            }
            std::thread::sleep(Duration::from_nanos(
                (until.saturating_sub(now)).min(1_000_000),
            ));
            continue;
        }
        if comm.try_recv(None, Some(TAG_STOP), &mut tiny).is_some() {
            return;
        }
        let mut served = false;
        // Bounded batch between stall-window checks.
        for _ in 0..64 {
            let Some(len) = comm.try_recv(None, Some(TAG_REQ), &mut buf) else {
                break;
            };
            served = true;
            let client = u16::from_le_bytes(buf[8..10].try_into().unwrap()) as usize;
            if cfg.service_ns > 0 {
                let t0 = Instant::now();
                let d = Duration::from_nanos(cfg.service_ns);
                if cfg.service_ns > 50_000 {
                    std::thread::sleep(d);
                } else {
                    while t0.elapsed() < d {
                        std::hint::spin_loop();
                    }
                }
            }
            // Echo, stamping ourselves as the responder (the client's
            // health table credits whoever actually answered).
            buf[8..10].copy_from_slice(&(me as u16).to_le_bytes());
            let mut tries = 0u32;
            while comm.try_send(client, TAG_RESP, &buf[..len]).is_err() {
                // The client drains constantly; a full response queue
                // means it is gone or wedged. Bounded patience, then
                // drop — the client's timeout machinery owns recovery.
                tries += 1;
                if tries > 1000 {
                    break;
                }
                std::thread::yield_now();
            }
        }
        if !served {
            std::thread::yield_now();
        }
    }
}

fn client_loop(comm: &mut RtComm, cfg: &ServeConfig, arrivals: &[u64]) -> ClientStats {
    let me = comm.rank();
    let workers = cfg.workers;
    let payload_len = cfg.payload.clamp(10, INLINE_MAX);
    let epoch = Instant::now();
    let mut health = HealthTable::new(workers, cfg.holdoff_ns);
    let mut stats = ClientStats {
        offered: arrivals.len() as u64,
        ..ClientStats::default()
    };
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    let mut backlog: Vec<VecDeque<BacklogEntry>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut backlog_len = 0usize;
    let mut next_try = vec![0u64; workers];
    let mut next_arrival = 0usize;
    let mut req_seq = 0u64;
    let mut next_timeout_scan = 0u64;
    let mut buf = [0u8; INLINE_MAX];
    let deadline = arrivals.last().copied().unwrap_or(0) + cfg.drain_timeout_ns;
    loop {
        let now = epoch.elapsed().as_nanos() as u64;
        let mut progressed = false;

        // 1. Drain responses. Enqueue→response latency is measured from
        // the *scheduled* arrival: a request that waited in the backlog
        // for admission was queueing, and queueing is latency.
        while let Some(len) = comm.try_recv(None, Some(TAG_RESP), &mut buf) {
            progressed = true;
            debug_assert!(len >= 10);
            let req_id = u64::from_le_bytes(buf[..8].try_into().unwrap());
            let responder = u16::from_le_bytes(buf[8..10].try_into().unwrap()) as usize;
            if responder < workers {
                health.on_response(responder);
            }
            if let Some(p) = pending.remove(&req_id) {
                stats.hist.record(now.saturating_sub(p.scheduled_ns).max(1));
            }
            // A duplicate response (the stalled original of a re-routed
            // request answering late) finds no pending entry and drops
            // here, harmlessly.
        }

        // 2. Schedule due arrivals into per-worker FIFO backlogs.
        while next_arrival < arrivals.len() && arrivals[next_arrival] <= now {
            let scheduled_ns = arrivals[next_arrival];
            next_arrival += 1;
            let req_id = (me as u64) << 48 | req_seq;
            req_seq += 1;
            let w = health.route(now);
            pending.insert(
                req_id,
                Pending {
                    scheduled_ns,
                    worker: w,
                    sent_ns: 0,
                },
            );
            backlog[w].push_back(BacklogEntry {
                req_id,
                attempts: 0,
            });
            backlog_len += 1;
            progressed = true;
        }

        // 3. Admission: one batched submit per worker per round.
        for w in 0..workers {
            // Entries whose request already completed (re-route twins)
            // retire when they reach the front.
            while let Some(e) = backlog[w].front() {
                if pending.contains_key(&e.req_id) {
                    break;
                }
                backlog[w].pop_front();
                backlog_len -= 1;
            }
            if backlog[w].is_empty() || next_try[w] > now {
                continue;
            }
            let ids: Vec<u64> = backlog[w]
                .iter()
                .take(SUBMIT_BATCH)
                .map(|e| e.req_id)
                .collect();
            let mut payloads = vec![[0u8; INLINE_MAX]; ids.len()];
            for (p, &rid) in payloads.iter_mut().zip(&ids) {
                p[..8].copy_from_slice(&rid.to_le_bytes());
                p[8..10].copy_from_slice(&(me as u16).to_le_bytes());
            }
            let refs: Vec<&[u8]> = payloads.iter().map(|p| &p[..payload_len]).collect();
            let admitted = comm.try_send_batch(w, TAG_REQ, &refs);
            for _ in 0..admitted {
                let e = backlog[w].pop_front().unwrap();
                backlog_len -= 1;
                if let Some(p) = pending.get_mut(&e.req_id) {
                    p.worker = w;
                    p.sent_ns = now;
                }
                progressed = true;
            }
            if admitted < refs.len() {
                // Queue full at the head of line: capped-backoff retry,
                // then shed — counted, never silent.
                stats.retry_attempts += 1;
                let attempts = {
                    let e = backlog[w].front_mut().unwrap();
                    e.attempts += 1;
                    e.attempts
                };
                if attempts > cfg.retry_limit {
                    let e = backlog[w].pop_front().unwrap();
                    backlog_len -= 1;
                    pending.remove(&e.req_id);
                    stats.shed += 1;
                    health.probe_aborted(w);
                } else {
                    let backoff = cfg
                        .retry_base_ns
                        .saturating_mul(1 << (attempts - 1).min(16))
                        .min(cfg.retry_cap_ns);
                    next_try[w] = now + backoff;
                }
            }
        }

        // 4. Timeout scan (admitted requests only), amortized.
        if now >= next_timeout_scan && !pending.is_empty() {
            next_timeout_scan = now + (cfg.suspect_after_ns / 4).max(1);
            let timed_out: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| {
                    p.sent_ns > 0 && now.saturating_sub(p.sent_ns) > cfg.suspect_after_ns
                })
                .map(|(&rid, _)| rid)
                .collect();
            for rid in timed_out {
                let old = pending[&rid].worker;
                health.on_timeout(old, now);
                // Degraded-mode routing: the in-flight request leaves
                // the sick worker and re-enters admission on a healthy
                // one. The original may still answer later — the
                // duplicate is dropped at the response sink.
                let w = health.route_away_from(old, now);
                let p = pending.get_mut(&rid).unwrap();
                p.worker = w;
                p.sent_ns = 0;
                backlog[w].push_back(BacklogEntry {
                    req_id: rid,
                    attempts: 0,
                });
                backlog_len += 1;
                stats.rerouted += 1;
                progressed = true;
            }
        }

        // 5. Done / deadline.
        if next_arrival == arrivals.len() && pending.is_empty() && backlog_len == 0 {
            break;
        }
        if now > deadline {
            stats.abandoned += pending.len() as u64;
            break;
        }

        // 6. Pacing: when genuinely idle (nothing in flight, next
        // arrival far away), sleep instead of stealing the worker's
        // core; with responses outstanding, stay on a hot poll.
        if !progressed {
            let next_due = if next_arrival < arrivals.len() {
                arrivals[next_arrival]
            } else {
                deadline
            };
            if pending.is_empty() && backlog_len == 0 && next_due > now + 300_000 {
                std::thread::sleep(Duration::from_nanos((next_due - now).min(1_000_000)));
            } else {
                std::thread::yield_now();
            }
        }
    }
    stats.quarantines = health.quarantines();
    stats.elapsed_ns = epoch.elapsed().as_nanos() as u64;
    stats
}

/// Run the service: spawn `workers + clients` rank-threads, replay
/// every client's arrival stream open-loop, and merge the per-client
/// stats. Returns once all clients completed (or abandoned) their
/// streams and the workers shut down.
pub fn run_service(cfg: &ServeConfig) -> ServeReport {
    assert!(cfg.workers >= 1 && cfg.clients >= 1);
    assert_eq!(
        cfg.arrivals.len(),
        cfg.clients,
        "one arrival stream per client"
    );
    let plan = cfg.fault_plan.clone().or_else(FaultPlan::from_env);
    let rt = RtConfig {
        queue_capacity: cfg.queue_capacity,
        ..RtConfig::default()
    };
    let stats: parking_lot::Mutex<Vec<ClientStats>> = parking_lot::Mutex::new(Vec::new());
    let n = cfg.workers + cfg.clients;
    run_rt_cfg(n, RtLmt::Direct, rt, |comm| {
        let r = comm.rank();
        if r < cfg.workers {
            let stalls = plan
                .as_ref()
                .map(|p| stall_windows_ns(p, r))
                .unwrap_or_default();
            worker_loop(comm, cfg, &stalls);
        } else {
            let i = r - cfg.workers;
            let s = client_loop(comm, cfg, &cfg.arrivals[i]);
            if i == 0 {
                // Coordinator: wait for every other client, then stop
                // the workers.
                let mut tiny = [0u8; 8];
                for c in 1..cfg.clients {
                    comm.recv(Some(cfg.workers + c), Some(TAG_CDONE), &mut tiny);
                }
                for w in 0..cfg.workers {
                    comm.send(w, TAG_STOP, &[1u8]);
                }
            } else {
                comm.send(cfg.workers, TAG_CDONE, &[1u8]);
            }
            stats.lock().push(s);
        }
    });
    let mut report = ServeReport {
        offered: 0,
        completed: 0,
        shed: 0,
        rerouted: 0,
        abandoned: 0,
        quarantines: 0,
        retry_attempts: 0,
        span_ns: cfg.span_ns.max(
            cfg.arrivals
                .iter()
                .filter_map(|a| a.last().copied())
                .max()
                .unwrap_or(0),
        ),
        elapsed_ns: 0,
        hist: LatencyHistogram::new(),
    };
    for s in stats.into_inner() {
        report.offered += s.offered;
        report.completed += s.hist.count();
        report.shed += s.shed;
        report.rerouted += s.rerouted;
        report.abandoned += s.abandoned;
        report.quarantines += s.quarantines;
        report.retry_attempts += s.retry_attempts;
        report.elapsed_ns = report.elapsed_ns.max(s.elapsed_ns);
        report.hist.merge(&s.hist);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(rate_on: f64, seed: u64) -> ServeConfig {
        // ~100 ms trace: 1000 steps of 100 µs.
        ServeConfig::with_mmpp(2, 2, 1000, 100_000, 0.2, 0.3, rate_on, seed)
    }

    #[test]
    fn echo_service_completes_every_request_at_low_load() {
        let cfg = quick_cfg(0.5, 7);
        let r = run_service(&cfg);
        assert!(r.offered > 0);
        assert_eq!(r.completed, r.offered, "low load must not lose requests");
        assert_eq!(r.shed + r.abandoned, 0);
        assert_eq!(r.hist.count(), r.completed);
        assert!(r.hist.percentile(0.5) > 0);
        assert!(r.hist.percentile(0.999) >= r.hist.percentile(0.5));
    }

    #[test]
    fn stalled_worker_degrades_gracefully_via_rerouting() {
        // Worker 0 stalls 20 ms into a ~200 ms run, for 60 ms. The
        // health machine must quarantine it and re-route; every request
        // still completes.
        let mut cfg = ServeConfig::with_mmpp(2, 2, 2000, 100_000, 0.2, 0.3, 0.8, 11);
        cfg.fault_plan = Some(FaultPlan::parse("stall@20ms:rank=0,for=60ms").unwrap());
        cfg.suspect_after_ns = 3_000_000;
        let r = run_service(&cfg);
        assert!(r.offered > 100);
        assert_eq!(
            r.completed + r.shed,
            r.offered,
            "stall must not strand requests (abandoned={})",
            r.abandoned
        );
        assert!(r.rerouted > 0, "timed-out requests must re-route");
        assert!(r.quarantines > 0, "two strikes must quarantine");
    }

    #[test]
    fn overload_sheds_loudly_not_silently() {
        // One worker with a 100 µs synthetic service time (~10k rps
        // capacity) against ~100k rps offered: the queue must fill,
        // admission must shed, and the books must still balance.
        let mut cfg = ServeConfig::with_mmpp(1, 2, 300, 100_000, 0.9, 0.05, 5.0, 13);
        cfg.service_ns = 100_000;
        cfg.queue_capacity = 16;
        cfg.retry_limit = 3;
        cfg.retry_cap_ns = 50_000;
        cfg.drain_timeout_ns = 4_000_000_000;
        let r = run_service(&cfg);
        assert!(r.shed > 0, "overload must surface as shed requests");
        assert!(r.retry_attempts > 0);
        assert_eq!(
            r.completed + r.shed + r.abandoned,
            r.offered,
            "books balance"
        );
    }
}
