//! HDR-style log-linear latency histogram.
//!
//! Fixed-size, allocation-free on the record path: values bucket into
//! octaves of 16 linear sub-buckets (relative quantization error is
//! bounded by 1/16 ≈ 6%, uniform across the whole range), so one
//! `[u64; 976]` array covers 1 ns to `u64::MAX` ns. The client hot loop
//! records into a thread-local histogram with one shift/mask and one
//! increment; merging across clients happens once, after the run.

/// Linear sub-buckets per octave (as a power of two).
const SUB_BITS: usize = 4;
const SUB: usize = 1 << SUB_BITS;
/// Octaves 0..=60 of 16 sub-buckets each.
const N_BUCKETS: usize = (64 - SUB_BITS + 1) * SUB;

/// A log-linear histogram of nanosecond latencies.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; N_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self {
            counts: Box::new([0u64; N_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        let v = v.max(1);
        let msb = 63 - v.leading_zeros() as usize;
        if msb < SUB_BITS {
            return v as usize;
        }
        let octave = msb - SUB_BITS + 1;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (octave << SUB_BITS) | sub
    }

    /// Lower edge of bucket `i` (every value in the bucket is ≥ this).
    fn bucket_floor(i: usize) -> u64 {
        let octave = i >> SUB_BITS;
        let sub = (i & (SUB - 1)) as u64;
        if octave == 0 {
            sub
        } else {
            (SUB as u64 + sub) << (octave - 1)
        }
    }

    /// Record one latency (clamped to ≥ 1 ns). No allocation, no
    /// branching beyond the bucket math.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        self.counts[Self::bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.min = self.min.min(nanos.max(1));
        self.max = self.max.max(nanos);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in ns (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Largest recorded value (exact, not quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`) in ns, quantized to its bucket's
    /// lower edge (≤ 6% below the true value). 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_floor(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("p50_ns", &self.percentile(0.50))
            .field("p99_ns", &self.percentile(0.99))
            .field("p999_ns", &self.percentile(0.999))
            .field("max_ns", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 1..SUB as u64 {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9] {
            let want = ((q * (SUB - 1) as f64).ceil() as u64).max(1);
            assert_eq!(h.percentile(q), want, "q={q}");
        }
    }

    #[test]
    fn percentiles_track_a_known_distribution_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        // Deterministic skewed stream: mostly ~10us, a 1% tail at ~5ms.
        let mut vals: Vec<u64> = Vec::new();
        for i in 0..10_000u64 {
            let v = if i % 100 == 99 {
                5_000_000 + i * 13
            } else {
                10_000 + (i * 7) % 3_000
            };
            vals.push(v);
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.50, 0.99, 0.999] {
            let exact = vals[((q * vals.len() as f64).ceil() as usize - 1).min(vals.len() - 1)];
            let got = h.percentile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err < 1.0 / SUB as f64 + 0.001,
                "q={q}: histogram {got} vs exact {exact} (err {err:.3})"
            );
        }
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let (mut a, mut b, mut whole) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for i in 1..1000u64 {
            let v = i * i;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            whole.record(v);
        }
        a.merge(&b);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.count(), 0);
    }
}
