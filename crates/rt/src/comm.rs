//! A miniature real-thread message-passing runtime combining the rt
//! substrate pieces: ranks are OS threads, each with a Nemesis MPSC
//! receive queue; tiny messages ride *inside* the queue cell (one fused
//! pack-into-cell write), small messages travel through pooled cells
//! (two copies), large messages through the selected
//! [`RtLmtBackend`](crate::lmt::RtLmtBackend) — this module never names
//! a concrete strategy, exactly as `nemesis_core::comm` drives its
//! backends only through `LmtBackend`.
//!
//! This is the host-machine counterpart of `nemesis-core`: same protocol
//! shape, real memory, real atomics — used by tests and Criterion
//! benches to validate the data structures under true parallelism.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::backoff::Backoff;
use crate::cellpool::CellPool;
use crate::lmt::{backend_for_schedule, RtLmtBackend};
use crate::queue::{nem_queue_cfg, QueueFull, Receiver, Sender};
use crate::tuner::{RtChunkScheduleSelect, RtTransferSample, RtTuner};

pub use crate::lmt::RtLmt;

/// Messages at or below this size go eager (through cells).
pub const EAGER_MAX: usize = 16 << 10;

/// Payload bytes a packet can carry inline, inside the receive-queue
/// cell itself. Contiguous sends at or below this size skip the cell
/// pool entirely: one fused write packs header and payload into the
/// queue cell, so the message touches each cache line exactly once on
/// each side.
pub const INLINE_MAX: usize = 256;

/// Runtime tunables — the rt mirror of the queue/backoff knobs in
/// `nemesis_core::NemesisConfig` (the `nemesis` facade crate bridges
/// one into the other).
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Receive-queue cells per rank (bounded in-flight packets).
    pub queue_capacity: usize,
    /// Pooled eager cells shared by all ranks.
    pub cells: usize,
    /// Payload bytes per pooled cell.
    pub cell_size: usize,
    /// Contiguous payloads at or below this ride inline in the queue
    /// cell (clamped to [`INLINE_MAX`]). 0 disables the inline path.
    pub inline_max: usize,
    /// Spin cap fed to every [`Backoff`] the runtime creates (see
    /// `Backoff::with_spin_limit`).
    pub spin_limit: u32,
    /// Packets the consumer drains per queue poll (single batched
    /// recycle).
    pub recv_batch: usize,
    /// Chunk schedule of the double-buffer ring (the rt mirror of
    /// `NemesisConfig::chunk_schedule`, bridged by `nemesis::rt_config_from`).
    pub chunk_schedule: RtChunkScheduleSelect,
    /// How collectives pick their algorithm arm (the rt mirror of
    /// `NemesisConfig::coll_alg`). `Learned` consults the tuner's
    /// collective bandit; `run_rt_cfg` creates a tuner automatically
    /// when none is supplied.
    pub coll_alg: crate::coll::RtCollAlg,
    /// Per-pair learned state. `run_rt_cfg` creates one automatically
    /// when the schedule is `Learned`; pass an explicit tuner to keep
    /// learned state across runs (the report binary does, to measure a
    /// converged schedule).
    pub tuner: Option<Arc<RtTuner>>,
    /// Real-clock cap on how long a rendezvous sender waits for the
    /// receiver's completion — the rt mirror of the simulated engine's
    /// watchdog. A peer that never drains the transfer turns into a
    /// loud panic naming both ranks instead of a silent hang. `None`
    /// waits forever (the seed behavior).
    pub rndv_timeout: Option<std::time::Duration>,
}

impl Default for RtConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 512,
            cells: 16,
            cell_size: EAGER_MAX,
            inline_max: INLINE_MAX,
            spin_limit: crate::backoff::DEFAULT_SPIN_LIMIT,
            recv_batch: 16,
            chunk_schedule: RtChunkScheduleSelect::default(),
            coll_alg: crate::coll::RtCollAlg::from_env(),
            tuner: None,
            rndv_timeout: Some(std::time::Duration::from_secs(30)),
        }
    }
}

impl RtConfig {
    /// Scale the pooled-cell count for `n` ranks (the former hard-wired
    /// sizing rule).
    fn for_ranks(mut self, n: usize) -> Self {
        self.cells = self.cells.max(4 * n.max(4));
        self
    }
}

struct Rts {
    /// Sender buffer (valid until `done` is set — the sender blocks).
    src: *const u8,
    len: usize,
    /// Receiver sets this when the data is out; the sender spins on it.
    done: Arc<AtomicUsize>,
}

// The size difference is the point: `Inline` embeds the payload in the
// queue cell so tiny messages never touch the cell pool. Cells are
// slab-allocated once, so the large variant costs no per-message memory.
#[allow(clippy::large_enum_variant)]
enum Packet {
    /// Fused fast path: the payload lives in this very queue cell.
    Inline {
        src_rank: usize,
        tag: i32,
        len: u16,
        data: [u8; INLINE_MAX],
    },
    Eager {
        src_rank: usize,
        tag: i32,
        cell: usize,
        len: usize,
    },
    Rndv {
        src_rank: usize,
        tag: i32,
        rts: Rts,
    },
}

// SAFETY: the raw pointer inside `Rts` stays valid because the sending
// thread blocks inside `send` until `done` is set.
unsafe impl Send for Packet {}

fn pkt_src(p: &Packet) -> usize {
    match p {
        Packet::Inline { src_rank, .. }
        | Packet::Eager { src_rank, .. }
        | Packet::Rndv { src_rank, .. } => *src_rank,
    }
}

/// Buffered unexpected packets, bucketed by source rank — the rt mirror
/// of the core engine's source-sharded posted set: a concrete-source
/// receive scans only its sender's backlog, so buffering traffic from
/// many peers does not make every later receive pay an O(all-buffered)
/// scan. Global arrival order is preserved through per-packet sequence
/// numbers, so wildcard receives still match oldest-first.
#[derive(Default)]
struct UnexpectedSet {
    by_src: HashMap<usize, VecDeque<(u64, Packet)>>,
    next_seq: u64,
}

impl UnexpectedSet {
    fn push(&mut self, pkt: Packet) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.by_src
            .entry(pkt_src(&pkt))
            .or_default()
            .push_back((seq, pkt));
    }

    /// Take the oldest buffered packet matching `(src, tag)`, if any.
    fn take(&mut self, src: Option<usize>, tag: Option<i32>) -> Option<Packet> {
        let bucket = match src {
            Some(s) => s,
            // Wildcard source: the oldest tag-match of each bucket
            // competes on its sequence number.
            None => {
                self.by_src
                    .iter()
                    .filter_map(|(&s, q)| {
                        q.iter()
                            .find(|(_, p)| RtComm::pkt_matches(p, src, tag))
                            .map(|&(seq, _)| (seq, s))
                    })
                    .min()?
                    .1
            }
        };
        let q = self.by_src.get_mut(&bucket)?;
        let i = q
            .iter()
            .position(|(_, p)| RtComm::pkt_matches(p, src, tag))?;
        let pkt = q.remove(i).map(|(_, p)| p);
        if q.is_empty() {
            self.by_src.remove(&bucket);
        }
        pkt
    }
}

struct Shared {
    senders: Vec<Sender<Packet>>,
    cells: CellPool,
    /// The selected large-message backend; all transfer bytes flow
    /// through this trait object.
    backend: Box<dyn RtLmtBackend>,
    cfg: RtConfig,
    n: usize,
}

/// Per-rank endpoint.
pub struct RtComm {
    rank: usize,
    shared: Arc<Shared>,
    rx: Receiver<Packet>,
    unexpected: UnexpectedSet,
}

impl RtComm {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// Diagnostic name of the active large-message backend.
    pub fn lmt_name(&self) -> &'static str {
        self.shared.backend.name()
    }

    /// The learned-state tuner, when the configuration carries one.
    pub fn tuner(&self) -> Option<&Arc<RtTuner>> {
        self.shared.cfg.tuner.as_ref()
    }

    /// Free cells in the shared eager pool. Exact only while the other
    /// ranks are quiesced — use for leak checks at known sync points.
    pub fn free_cells(&self) -> usize {
        self.shared.cells.free_count()
    }

    /// Total cells in the shared eager pool.
    pub fn total_cells(&self) -> usize {
        self.shared.cfg.cells
    }

    /// How collectives pick their algorithm arm.
    pub fn coll_alg(&self) -> crate::coll::RtCollAlg {
        self.shared.cfg.coll_alg
    }

    fn backoff(&self) -> Backoff {
        Backoff::with_spin_limit(self.shared.cfg.spin_limit)
    }

    /// Blocking send of `data` to `dst`.
    pub fn send(&self, dst: usize, tag: i32, data: &[u8]) {
        assert!(dst < self.shared.n && dst != self.rank, "bad destination");
        let inline_max = self.shared.cfg.inline_max.min(INLINE_MAX);
        if data.len() <= inline_max {
            // Fused path: pack header + payload straight into the queue
            // cell — no pool acquire, no second staging copy.
            let mut buf = [0u8; INLINE_MAX];
            buf[..data.len()].copy_from_slice(data);
            self.shared.senders[dst].enqueue(Packet::Inline {
                src_rank: self.rank,
                tag,
                len: data.len() as u16,
                data: buf,
            });
            return;
        }
        // The eager cutoff is bounded by the configured cell size: a
        // payload that does not fit one pooled cell must go rendezvous,
        // whatever EAGER_MAX says.
        if data.len() <= EAGER_MAX.min(self.shared.cells.cell_size()) {
            // Eager: copy into a pooled cell (first copy).
            let mut bo = self.backoff();
            let cell = loop {
                if let Some(c) = self.shared.cells.try_acquire() {
                    break c;
                }
                bo.snooze();
            };
            self.shared
                .cells
                .with_cell(cell, |d| d[..data.len()].copy_from_slice(data));
            self.shared.senders[dst].enqueue(Packet::Eager {
                src_rank: self.rank,
                tag,
                cell,
                len: data.len(),
            });
            return;
        }
        // Rendezvous: announce, let the backend move the payload, then
        // hold the buffer until the receiver confirms completion.
        let done = Arc::new(AtomicUsize::new(0));
        self.shared.senders[dst].enqueue(Packet::Rndv {
            src_rank: self.rank,
            tag,
            rts: Rts {
                src: data.as_ptr(),
                len: data.len(),
                done: Arc::clone(&done),
            },
        });
        self.shared.backend.send_payload(self.rank, dst, data);
        let mut bo = self.backoff();
        let deadline = self
            .shared
            .cfg
            .rndv_timeout
            .map(|t| std::time::Instant::now() + t);
        let mut spins: u32 = 0;
        while done.load(Ordering::Acquire) == 0 {
            bo.snooze();
            // Check the clock only every so often: the hot path stays a
            // pure load + snooze.
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(1024) {
                if let Some(deadline) = deadline {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "rank {dst} stalled: rendezvous from rank {} ({} bytes) not \
                         drained within {:?}",
                        self.rank,
                        data.len(),
                        self.shared.cfg.rndv_timeout.unwrap(),
                    );
                }
            }
        }
    }

    /// Non-blocking send of an inline-sized payload (at most the
    /// configured `inline_max`): either the packet lands in `dst`'s
    /// receive queue or the queue is full and [`QueueFull`] comes back —
    /// the bounded queue's backpressure surfaced to the caller instead
    /// of absorbed by `send`'s backoff loop.
    pub fn try_send(&self, dst: usize, tag: i32, data: &[u8]) -> Result<(), QueueFull<()>> {
        assert!(dst < self.shared.n && dst != self.rank, "bad destination");
        let inline_max = self.shared.cfg.inline_max.min(INLINE_MAX);
        assert!(
            data.len() <= inline_max,
            "try_send is the inline path: {} bytes exceeds inline_max {}",
            data.len(),
            inline_max
        );
        let mut buf = [0u8; INLINE_MAX];
        buf[..data.len()].copy_from_slice(data);
        self.shared.senders[dst]
            .try_enqueue(Packet::Inline {
                src_rank: self.rank,
                tag,
                len: data.len() as u16,
                data: buf,
            })
            .map_err(|QueueFull(_)| QueueFull(()))
    }

    /// Admission batching: non-blocking send of a run of inline-sized
    /// payloads to `dst`, in order, stopping at the first full queue.
    /// Returns how many were admitted (`payloads.len()` when the whole
    /// batch landed). Stopping at the first [`QueueFull`] — instead of
    /// skipping ahead — is what keeps the admitted stream per-pair
    /// FIFO: a later payload never overtakes one the queue rejected.
    /// The serving layer's submit path batches arrivals through this,
    /// amortizing the doorbell/turnstile traffic of one enqueue across
    /// a burst.
    pub fn try_send_batch(&self, dst: usize, tag: i32, payloads: &[&[u8]]) -> usize {
        for (i, p) in payloads.iter().enumerate() {
            if self.try_send(dst, tag, p).is_err() {
                return i;
            }
        }
        payloads.len()
    }

    /// Blocking receive from `src` with `tag` into `dst`; returns the
    /// received length.
    pub fn recv(&mut self, src: Option<usize>, tag: Option<i32>, dst: &mut [u8]) -> usize {
        let pkt = self.match_packet(src, tag);
        self.deliver(pkt, dst)
    }

    /// Non-blocking receive: deliver a matching packet if one is
    /// already buffered or arrives in a single queue drain, else
    /// `None`. This is the service worker's poll primitive — a worker
    /// multiplexing requests with health probes cannot park inside
    /// [`RtComm::recv`]'s backoff loop.
    pub fn try_recv(
        &mut self,
        src: Option<usize>,
        tag: Option<i32>,
        dst: &mut [u8],
    ) -> Option<usize> {
        if let Some(p) = self.unexpected.take(src, tag) {
            return Some(self.deliver(p, dst));
        }
        let batch = self.shared.cfg.recv_batch.max(1);
        let mut found: Option<Packet> = None;
        let unexpected = &mut self.unexpected;
        self.rx.dequeue_batch(batch, |p| {
            if found.is_none() && Self::pkt_matches(&p, src, tag) {
                found = Some(p);
            } else {
                unexpected.push(p);
            }
        });
        found.map(|p| self.deliver(p, dst))
    }

    /// Move one matched packet's payload into `dst` (the shared tail of
    /// [`RtComm::recv`] and [`RtComm::try_recv`]).
    fn deliver(&mut self, pkt: Packet, dst: &mut [u8]) -> usize {
        match pkt {
            Packet::Inline { len, data, .. } => {
                let len = len as usize;
                assert!(len <= dst.len(), "receive buffer too small");
                // The one and only copy out of the queue cell.
                dst[..len].copy_from_slice(&data[..len]);
                len
            }
            Packet::Eager { cell, len, .. } => {
                assert!(len <= dst.len(), "receive buffer too small");
                // Second copy: cell → user buffer; then recycle the cell.
                self.shared
                    .cells
                    .with_cell(cell, |d| dst[..len].copy_from_slice(&d[..len]));
                self.shared.cells.release(cell);
                len
            }
            Packet::Rndv { src_rank, rts, .. } => {
                assert!(rts.len <= dst.len(), "receive buffer too small");
                // SAFETY: the sender keeps `src` alive until we set
                // `done` below.
                let src_slice = unsafe { std::slice::from_raw_parts(rts.src, rts.len) };
                let t0 = self
                    .shared
                    .cfg
                    .tuner
                    .as_ref()
                    .map(|_| std::time::Instant::now());
                self.shared.backend.recv_payload(
                    src_rank,
                    self.rank,
                    src_slice,
                    &mut dst[..rts.len],
                );
                // Mirror of the simulated stack's completion sampling:
                // every rendezvous completion feeds the tuner, on the
                // receiver.
                if let (Some(tuner), Some(t0)) = (&self.shared.cfg.tuner, t0) {
                    tuner.record_transfer(
                        src_rank,
                        self.rank,
                        &RtTransferSample {
                            backend: self.shared.backend.name(),
                            offload: self.shared.backend.is_offload(),
                            bytes: rts.len,
                            nanos: t0.elapsed().as_nanos() as u64,
                        },
                    );
                }
                let len = rts.len;
                rts.done.store(1, Ordering::Release);
                len
            }
        }
    }

    /// Blocking vectored send: the `(offset, len)` blocks of `buf` form
    /// the payload. All rt backends are scatter-blind, so the blocks are
    /// packed into a contiguous staging buffer first — the same
    /// dataloop-style path `nemesis_core` uses for its byte-stream
    /// wires.
    pub fn sendv(&self, dst: usize, tag: i32, buf: &[u8], blocks: &[(usize, usize)]) {
        // Contiguous fast path (mirrors `Comm::isendv` skipping the pack
        // when `layout.is_contiguous()`).
        if let [(off, len)] = *blocks {
            return self.send(dst, tag, &buf[off..off + len]);
        }
        let total: usize = blocks.iter().map(|&(_, l)| l).sum();
        let mut staging = Vec::with_capacity(total);
        for &(off, len) in blocks {
            staging.extend_from_slice(&buf[off..off + len]);
        }
        self.send(dst, tag, &staging);
    }

    /// Blocking vectored receive: the payload is scattered into the
    /// `(offset, len)` blocks of `buf`. Returns the received length.
    pub fn recvv(
        &mut self,
        src: Option<usize>,
        tag: Option<i32>,
        buf: &mut [u8],
        blocks: &[(usize, usize)],
    ) -> usize {
        // Contiguous fast path: receive straight into the single block.
        if let [(off, len)] = *blocks {
            let got = self.recv(src, tag, &mut buf[off..off + len]);
            assert_eq!(got, len, "vectored payload length mismatch");
            return got;
        }
        let total: usize = blocks.iter().map(|&(_, l)| l).sum();
        let mut staging = vec![0u8; total];
        let got = self.recv(src, tag, &mut staging);
        assert_eq!(got, total, "vectored payload length mismatch");
        let mut at = 0;
        for &(off, len) in blocks {
            buf[off..off + len].copy_from_slice(&staging[at..at + len]);
            at += len;
        }
        got
    }

    fn pkt_matches(pkt: &Packet, src: Option<usize>, tag: Option<i32>) -> bool {
        let (s, t) = match pkt {
            Packet::Inline { src_rank, tag, .. } => (*src_rank, *tag),
            Packet::Eager { src_rank, tag, .. } => (*src_rank, *tag),
            Packet::Rndv { src_rank, tag, .. } => (*src_rank, *tag),
        };
        src.map(|x| x == s).unwrap_or(true) && tag.map(|x| x == t).unwrap_or(true)
    }

    fn match_packet(&mut self, src: Option<usize>, tag: Option<i32>) -> Packet {
        // Previously buffered packets first, in arrival order.
        if let Some(p) = self.unexpected.take(src, tag) {
            return p;
        }
        let batch = self.shared.cfg.recv_batch.max(1);
        let mut bo = self.backoff();
        loop {
            // Drain a batch per poll (one chained recycle). The first
            // match is picked out in the sink — the pingpong hot path
            // never touches the unexpected buffer — and everything else
            // parks there. No rescan needed: packets parked by *this*
            // call were already checked in the sink.
            let mut found: Option<Packet> = None;
            let unexpected = &mut self.unexpected;
            let got = self.rx.dequeue_batch(batch, |p| {
                if found.is_none() && Self::pkt_matches(&p, src, tag) {
                    found = Some(p);
                } else {
                    unexpected.push(p);
                }
            });
            if let Some(p) = found {
                return p;
            }
            if got == 0 {
                bo.snooze();
            } else {
                bo.reset();
            }
        }
    }
}

/// Run `n` rank-threads with the given large-message strategy. Each
/// thread gets its own [`RtComm`]. Returns when all ranks finish.
pub fn run_rt<F>(n: usize, lmt: RtLmt, body: F)
where
    F: Fn(&mut RtComm) + Send + Sync,
{
    run_rt_cfg(n, lmt, RtConfig::default(), body)
}

/// Run `n` rank-threads with an explicit [`RtConfig`] (the bridge point
/// for `NemesisConfig`-derived tuning). A `Learned` chunk schedule gets
/// a fresh tuner unless the config carries one already.
pub fn run_rt_cfg<F>(n: usize, lmt: RtLmt, mut cfg: RtConfig, body: F)
where
    F: Fn(&mut RtComm) + Send + Sync,
{
    if (cfg.chunk_schedule == RtChunkScheduleSelect::Learned
        || cfg.coll_alg == crate::coll::RtCollAlg::Learned)
        && cfg.tuner.is_none()
    {
        cfg.tuner = Some(RtTuner::new(n));
    }
    let backend = backend_for_schedule(lmt, n, cfg.chunk_schedule, cfg.tuner.as_ref());
    run_rt_with_cfg(n, backend, cfg, body)
}

/// Run `n` rank-threads over an explicit backend instance (the
/// extension point for out-of-tree copy engines).
pub fn run_rt_with<F>(n: usize, backend: Box<dyn RtLmtBackend>, body: F)
where
    F: Fn(&mut RtComm) + Send + Sync,
{
    run_rt_with_cfg(n, backend, RtConfig::default(), body)
}

/// The fully explicit runner: backend instance + runtime config.
pub fn run_rt_with_cfg<F>(n: usize, backend: Box<dyn RtLmtBackend>, cfg: RtConfig, body: F)
where
    F: Fn(&mut RtComm) + Send + Sync,
{
    assert!(n >= 1);
    let cfg = cfg.for_ranks(n);
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = nem_queue_cfg(cfg.queue_capacity, cfg.spin_limit);
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(Shared {
        senders,
        cells: CellPool::new(cfg.cells, cfg.cell_size),
        backend,
        cfg,
        n,
    });
    std::thread::scope(|s| {
        for (rank, rx) in receivers.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let body = &body;
            s.spawn(move || {
                let mut comm = RtComm {
                    rank,
                    shared,
                    rx,
                    unexpected: UnexpectedSet::default(),
                };
                body(&mut comm);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lmt::ALL_RT_LMTS;

    #[test]
    fn eager_roundtrip_all_strategies() {
        for lmt in ALL_RT_LMTS {
            run_rt(2, lmt, |comm| {
                if comm.rank() == 0 {
                    let data: Vec<u8> = (0..1000).map(|i| (i % 250) as u8).collect();
                    comm.send(1, 1, &data);
                } else {
                    let mut buf = vec![0u8; 1000];
                    assert_eq!(comm.recv(Some(0), Some(1), &mut buf), 1000);
                    assert!(buf.iter().enumerate().all(|(i, &b)| b == (i % 250) as u8));
                }
            });
        }
    }

    #[test]
    fn inline_roundtrip_boundary_sizes() {
        // Sizes straddling the inline threshold, including zero.
        for len in [
            0usize,
            1,
            63,
            64,
            INLINE_MAX - 1,
            INLINE_MAX,
            INLINE_MAX + 1,
        ] {
            run_rt(2, RtLmt::Direct, move |comm| {
                if comm.rank() == 0 {
                    let data: Vec<u8> = (0..len).map(|i| (i % 250) as u8).collect();
                    comm.send(1, 9, &data);
                } else {
                    let mut buf = vec![0xAAu8; len + 8];
                    assert_eq!(comm.recv(Some(0), Some(9), &mut buf), len);
                    assert!(buf[..len]
                        .iter()
                        .enumerate()
                        .all(|(i, &b)| b == (i % 250) as u8));
                    assert!(buf[len..].iter().all(|&b| b == 0xAA), "overrun");
                }
            });
        }
    }

    #[test]
    fn small_cells_route_midsize_sends_to_rendezvous() {
        // cell_size below EAGER_MAX: a payload between the two must go
        // rendezvous instead of asserting on the pooled-cell copy.
        let cfg = RtConfig {
            cell_size: 8 << 10,
            ..RtConfig::default()
        };
        run_rt_cfg(2, RtLmt::Direct, cfg, |comm| {
            let n = 12 << 10; // > cell_size, < EAGER_MAX
            if comm.rank() == 0 {
                let data: Vec<u8> = (0..n).map(|i| (i % 247) as u8).collect();
                comm.send(1, 3, &data);
            } else {
                let mut buf = vec![0u8; n];
                assert_eq!(comm.recv(Some(0), Some(3), &mut buf), n);
                assert!(buf.iter().enumerate().all(|(i, &b)| b == (i % 247) as u8));
            }
        });
    }

    #[test]
    fn inline_disabled_still_delivers() {
        let cfg = RtConfig {
            inline_max: 0,
            ..RtConfig::default()
        };
        run_rt_cfg(2, RtLmt::Direct, cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[7u8; 32]);
            } else {
                let mut buf = [0u8; 32];
                assert_eq!(comm.recv(Some(0), Some(1), &mut buf), 32);
                assert!(buf.iter().all(|&b| b == 7));
            }
        });
    }

    #[test]
    fn large_roundtrip_all_strategies() {
        for lmt in ALL_RT_LMTS {
            run_rt(2, lmt, |comm| {
                let n = 3 << 20;
                if comm.rank() == 0 {
                    let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
                    comm.send(1, 2, &data);
                } else {
                    let mut buf = vec![0u8; n];
                    assert_eq!(comm.recv(Some(0), Some(2), &mut buf), n);
                    for (i, &b) in buf.iter().enumerate() {
                        assert_eq!(b, (i % 251) as u8, "{lmt:?}: byte {i}");
                    }
                }
            });
        }
    }

    #[test]
    fn tag_matching_with_unexpected() {
        run_rt(2, RtLmt::Direct, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, &[1u8; 100]);
                comm.send(1, 20, &[2u8; 100]);
            } else {
                let mut buf = [0u8; 100];
                comm.recv(Some(0), Some(20), &mut buf);
                assert!(buf.iter().all(|&b| b == 2));
                comm.recv(Some(0), Some(10), &mut buf);
                assert!(buf.iter().all(|&b| b == 1));
            }
        });
    }

    #[test]
    fn ring_of_ranks_all_strategies() {
        for lmt in ALL_RT_LMTS {
            run_rt(4, lmt, |comm| {
                let me = comm.rank();
                let n = comm.size();
                let next = (me + 1) % n;
                let prev = (me + n - 1) % n;
                let data = vec![me as u8 + 1; 200_000];
                let mut buf = vec![0u8; 200_000];
                // Odd/even ordering avoids send-send deadlock with the
                // synchronous rendezvous.
                if me.is_multiple_of(2) {
                    comm.send(next, 0, &data);
                    comm.recv(Some(prev), Some(0), &mut buf);
                } else {
                    comm.recv(Some(prev), Some(0), &mut buf);
                    comm.send(next, 0, &data);
                }
                assert!(buf.iter().all(|&b| b == prev as u8 + 1));
            });
        }
    }

    #[test]
    fn many_small_messages_stress() {
        run_rt(3, RtLmt::Direct, |comm| {
            let me = comm.rank();
            if me == 0 {
                for i in 0..200u8 {
                    comm.send(1 + (i as usize % 2), i as i32 % 7, &[i; 64]);
                }
            } else {
                let mut buf = [0u8; 64];
                let mut seen = 0;
                while seen < 100 {
                    comm.recv(Some(0), None, &mut buf);
                    seen += 1;
                }
            }
        });
    }

    #[test]
    fn wildcard_source() {
        run_rt(3, RtLmt::Direct, |comm| {
            let me = comm.rank();
            if me == 2 {
                let mut buf = [0u8; 32];
                for _ in 0..2 {
                    comm.recv(None, Some(5), &mut buf);
                    assert!(buf[0] == 1 || buf[0] == 2);
                }
            } else {
                comm.send(2, 5, &[me as u8 + 1; 32]);
            }
        });
    }

    #[test]
    fn vectored_single_block_fast_path() {
        run_rt(2, RtLmt::Direct, |comm| {
            if comm.rank() == 0 {
                let buf = vec![7u8; 100_000];
                comm.sendv(1, 4, &buf, &[(8, 90_000)]);
            } else {
                let mut buf = vec![0u8; 100_000];
                assert_eq!(
                    comm.recvv(Some(0), Some(4), &mut buf, &[(16, 90_000)]),
                    90_000
                );
                assert!(buf[16..16 + 90_000].iter().all(|&b| b == 7));
                assert!(buf[..16].iter().all(|&b| b == 0), "outside block untouched");
            }
        });
    }

    #[test]
    fn try_send_surfaces_queue_full() {
        // One-cell queues: the second un-drained try_send must come back
        // as QueueFull, and draining must make the cell reusable.
        let cfg = RtConfig {
            queue_capacity: 1,
            ..RtConfig::default()
        };
        run_rt_cfg(2, RtLmt::Direct, cfg, |comm| {
            if comm.rank() == 0 {
                assert_eq!(comm.try_send(1, 7, &[1u8; 16]), Ok(()));
                let mut second = comm.try_send(1, 7, &[2u8; 16]);
                assert_eq!(second, Err(QueueFull(())), "one-cell queue is full");
                // The receiver drains one packet, then the cell recycles.
                while second.is_err() {
                    std::hint::spin_loop();
                    second = comm.try_send(1, 7, &[2u8; 16]);
                }
            } else {
                let mut buf = [0u8; 16];
                comm.recv(Some(0), Some(7), &mut buf);
                assert!(buf.iter().all(|&b| b == 1));
                comm.recv(Some(0), Some(7), &mut buf);
                assert!(buf.iter().all(|&b| b == 2));
            }
        });
    }

    #[test]
    fn try_send_batch_admits_prefix_in_fifo_order() {
        // Queue of 4: a 6-payload batch admits exactly the first 4, and
        // the receiver sees them in submission order.
        let cfg = RtConfig {
            queue_capacity: 4,
            ..RtConfig::default()
        };
        run_rt_cfg(2, RtLmt::Direct, cfg, |comm| {
            if comm.rank() == 0 {
                let payloads: Vec<Vec<u8>> = (1..=6u8).map(|i| vec![i; 16]).collect();
                let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
                let admitted = comm.try_send_batch(1, 7, &refs);
                assert_eq!(admitted, 4, "bounded queue admits the prefix");
                // Signal the receiver how many to expect (tag 8 rides
                // after the drain starts, so capacity frees up).
                comm.send(1, 8, &[admitted as u8]);
            } else {
                std::thread::sleep(std::time::Duration::from_millis(20));
                let mut buf = [0u8; 16];
                for expect in 1..=4u8 {
                    comm.recv(Some(0), Some(7), &mut buf);
                    assert_eq!(buf[0], expect, "admitted prefix out of order");
                }
                let mut n = [0u8; 1];
                comm.recv(Some(0), Some(8), &mut n);
                assert_eq!(n[0], 4);
            }
        });
    }

    #[test]
    fn try_recv_polls_without_blocking() {
        run_rt(2, RtLmt::Direct, |comm| {
            if comm.rank() == 0 {
                let mut buf = [0u8; 16];
                // Nothing sent yet: the poll comes back empty.
                assert_eq!(comm.try_recv(Some(1), Some(3), &mut buf), None);
                comm.send(1, 1, &[9u8; 8]); // release the peer
                                            // Now poll until the reply lands.
                loop {
                    if let Some(len) = comm.try_recv(Some(1), Some(3), &mut buf) {
                        assert_eq!(len, 16);
                        assert!(buf.iter().all(|&b| b == 5));
                        break;
                    }
                    std::hint::spin_loop();
                }
                // Tag filtering holds for polls too: a mismatched tag
                // stays buffered for the blocking path.
                comm.send(1, 1, &[9u8; 8]);
                loop {
                    if comm.try_recv(Some(1), Some(4), &mut buf).is_some() {
                        panic!("tag 4 never sent");
                    }
                    if comm.try_recv(Some(1), Some(5), &mut buf).is_some() {
                        break;
                    }
                    std::hint::spin_loop();
                }
            } else {
                let mut buf = [0u8; 8];
                comm.recv(Some(0), Some(1), &mut buf);
                comm.send(0, 3, &[5u8; 16]);
                comm.recv(Some(0), Some(1), &mut buf);
                comm.send(0, 5, &[6u8; 16]);
            }
        });
    }

    #[test]
    fn rndv_timeout_panics_on_stalled_peer() {
        use std::panic::AssertUnwindSafe;
        use std::sync::atomic::AtomicBool;

        let cfg = RtConfig {
            rndv_timeout: Some(std::time::Duration::from_millis(50)),
            ..RtConfig::default()
        };
        let diagnosed = AtomicBool::new(false);
        run_rt_cfg(2, RtLmt::Direct, cfg, |comm| {
            if comm.rank() == 0 {
                // Rank 1 exits without ever posting the receive: the
                // rendezvous completion flag never flips, so the sender
                // must turn the hang into a loud stall diagnostic.
                let data = vec![3u8; 1 << 20];
                let err = std::panic::catch_unwind(AssertUnwindSafe(|| comm.send(1, 1, &data)))
                    .expect_err("stalled rendezvous must not complete");
                let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
                assert!(
                    msg.contains("rank 1 stalled"),
                    "diagnostic names the peer: {msg}"
                );
                assert!(msg.contains("rank 0"), "diagnostic names the sender: {msg}");
                diagnosed.store(true, Ordering::Release);
            }
        });
        assert!(diagnosed.load(Ordering::Acquire));
    }

    #[test]
    fn vectored_roundtrip_all_strategies() {
        // Strided blocks large enough to force the rendezvous path.
        let blocks: Vec<(usize, usize)> = (0..24).map(|i| (i * (3 << 10), 2 << 10)).collect();
        let span = 24 * (3 << 10);
        for lmt in ALL_RT_LMTS {
            run_rt(2, lmt, |comm| {
                if comm.rank() == 0 {
                    let mut buf = vec![0u8; span];
                    for (i, &(off, len)) in blocks.iter().enumerate() {
                        buf[off..off + len].fill(i as u8 + 1);
                    }
                    comm.sendv(1, 3, &buf, &blocks);
                } else {
                    let mut buf = vec![0u8; span];
                    comm.recvv(Some(0), Some(3), &mut buf, &blocks);
                    for (i, &(off, len)) in blocks.iter().enumerate() {
                        assert!(
                            buf[off..off + len].iter().all(|&b| b == i as u8 + 1),
                            "{lmt:?}: block {i} corrupt"
                        );
                    }
                }
            });
        }
    }
}
