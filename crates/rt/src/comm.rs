//! A miniature real-thread message-passing runtime combining the rt
//! substrate pieces: ranks are OS threads, each with a Nemesis MPSC
//! receive queue; small messages travel through pooled cells (two
//! copies), large messages through a selectable LMT-style strategy —
//! double-buffered ring (two copies, pipelined), direct single copy
//! (the KNEM analogue: threads share an address space), or the offload
//! engine (the I/OAT analogue).
//!
//! This is the host-machine counterpart of `nemesis-core`: same protocol
//! shape, real memory, real atomics — used by tests and Criterion
//! benches to validate the data structures under true parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::backoff::Backoff;
use crate::cellpool::CellPool;
use crate::copy::{DoubleBufferPipe, OffloadEngine};
use crate::queue::{nem_queue, Receiver, Sender};

/// Large-message strategy (the LMT backend analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtLmt {
    /// Two copies through a per-pair double-buffered ring.
    DoubleBuffer,
    /// Single direct copy by the receiver.
    Direct,
    /// Copy offloaded to the shared engine thread.
    Offload,
}

/// Messages at or below this size go eager (through cells).
pub const EAGER_MAX: usize = 16 << 10;

struct Rts {
    /// Sender buffer (valid until `done` is set — the sender blocks).
    src: *const u8,
    len: usize,
    /// Receiver sets this when the data is out; the sender spins on it.
    done: Arc<AtomicUsize>,
}

enum Packet {
    Eager {
        src_rank: usize,
        tag: i32,
        cell: usize,
        len: usize,
    },
    Rndv {
        src_rank: usize,
        tag: i32,
        rts: Rts,
    },
}

// SAFETY: the raw pointer inside `Rts` stays valid because the sending
// thread blocks inside `send` until `done` is set.
unsafe impl Send for Packet {}

struct Shared {
    senders: Vec<Sender<Packet>>,
    cells: CellPool,
    /// Per-(src,dst) double-buffer rings, created up front.
    rings: Vec<DoubleBufferPipe>,
    engine: OffloadEngine,
    n: usize,
    lmt: RtLmt,
}

/// Per-rank endpoint.
pub struct RtComm {
    rank: usize,
    shared: Arc<Shared>,
    rx: Receiver<Packet>,
    unexpected: Vec<Packet>,
}

impl RtComm {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.shared.n
    }

    fn ring_of(&self, src: usize, dst: usize) -> &DoubleBufferPipe {
        &self.shared.rings[src * self.shared.n + dst]
    }

    /// Blocking send of `data` to `dst`.
    pub fn send(&self, dst: usize, tag: i32, data: &[u8]) {
        assert!(dst < self.shared.n && dst != self.rank, "bad destination");
        if data.len() <= EAGER_MAX {
            // Eager: copy into a pooled cell (first copy).
            let mut bo = Backoff::new();
            let cell = loop {
                if let Some(c) = self.shared.cells.try_acquire() {
                    break c;
                }
                bo.snooze();
            };
            assert!(data.len() <= self.shared.cells.cell_size());
            self.shared
                .cells
                .with_cell(cell, |d| d[..data.len()].copy_from_slice(data));
            self.shared.senders[dst].enqueue(Packet::Eager {
                src_rank: self.rank,
                tag,
                cell,
                len: data.len(),
            });
            return;
        }
        // Rendezvous: announce, then serve the transfer.
        let done = Arc::new(AtomicUsize::new(0));
        self.shared.senders[dst].enqueue(Packet::Rndv {
            src_rank: self.rank,
            tag,
            rts: Rts {
                src: data.as_ptr(),
                len: data.len(),
                done: Arc::clone(&done),
            },
        });
        let mut bo = Backoff::new();
        match self.shared.lmt {
            RtLmt::DoubleBuffer => {
                // The sender performs the copy-in half of the transfer.
                self.ring_of(self.rank, dst).send(data);
                while done.load(Ordering::Acquire) == 0 {
                    bo.snooze();
                }
            }
            RtLmt::Direct | RtLmt::Offload => {
                // Receiver-driven: just wait for completion.
                while done.load(Ordering::Acquire) == 0 {
                    bo.snooze();
                }
            }
        }
    }

    /// Blocking receive from `src` with `tag` into `dst`; returns the
    /// received length.
    pub fn recv(&mut self, src: Option<usize>, tag: Option<i32>, dst: &mut [u8]) -> usize {
        let pkt = self.match_packet(src, tag);
        match pkt {
            Packet::Eager {
                cell, len, ..
            } => {
                assert!(len <= dst.len(), "receive buffer too small");
                // Second copy: cell → user buffer; then recycle the cell.
                self.shared
                    .cells
                    .with_cell(cell, |d| dst[..len].copy_from_slice(&d[..len]));
                self.shared.cells.release(cell);
                len
            }
            Packet::Rndv { src_rank, rts, .. } => {
                assert!(rts.len <= dst.len(), "receive buffer too small");
                match self.shared.lmt {
                    RtLmt::DoubleBuffer => {
                        self.ring_of(src_rank, self.rank).recv(&mut dst[..rts.len]);
                    }
                    RtLmt::Direct => {
                        // SAFETY: the sender keeps `src` alive until we
                        // set `done` below.
                        let src_slice =
                            unsafe { std::slice::from_raw_parts(rts.src, rts.len) };
                        dst[..rts.len].copy_from_slice(src_slice);
                    }
                    RtLmt::Offload => {
                        let src_slice =
                            unsafe { std::slice::from_raw_parts(rts.src, rts.len) };
                        self.shared
                            .engine
                            .submit(src_slice, &mut dst[..rts.len])
                            .wait();
                    }
                }
                let len = rts.len;
                rts.done.store(1, Ordering::Release);
                len
            }
        }
    }

    fn pkt_matches(pkt: &Packet, src: Option<usize>, tag: Option<i32>) -> bool {
        let (s, t) = match pkt {
            Packet::Eager { src_rank, tag, .. } => (*src_rank, *tag),
            Packet::Rndv { src_rank, tag, .. } => (*src_rank, *tag),
        };
        src.map(|x| x == s).unwrap_or(true) && tag.map(|x| x == t).unwrap_or(true)
    }

    fn match_packet(&mut self, src: Option<usize>, tag: Option<i32>) -> Packet {
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|p| Self::pkt_matches(p, src, tag))
        {
            return self.unexpected.remove(pos);
        }
        let mut bo = Backoff::new();
        loop {
            match self.rx.dequeue() {
                Some(pkt) if Self::pkt_matches(&pkt, src, tag) => return pkt,
                Some(pkt) => self.unexpected.push(pkt),
                None => bo.snooze(),
            }
        }
    }
}

/// Run `n` rank-threads with the given large-message strategy. Each
/// thread gets its own [`RtComm`]. Returns when all ranks finish.
pub fn run_rt<F>(n: usize, lmt: RtLmt, body: F)
where
    F: Fn(&mut RtComm) + Send + Sync,
{
    assert!(n >= 1);
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = nem_queue();
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(Shared {
        senders,
        cells: CellPool::new(4 * n.max(4), EAGER_MAX),
        rings: (0..n * n)
            .map(|_| DoubleBufferPipe::new(32 << 10, 2))
            .collect(),
        engine: OffloadEngine::start(),
        n,
        lmt,
    });
    std::thread::scope(|s| {
        for (rank, rx) in receivers.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let body = &body;
            s.spawn(move || {
                let mut comm = RtComm {
                    rank,
                    shared,
                    rx,
                    unexpected: Vec::new(),
                };
                body(&mut comm);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRATEGIES: [RtLmt; 3] = [RtLmt::DoubleBuffer, RtLmt::Direct, RtLmt::Offload];

    #[test]
    fn eager_roundtrip_all_strategies() {
        for lmt in STRATEGIES {
            run_rt(2, lmt, |comm| {
                if comm.rank() == 0 {
                    let data: Vec<u8> = (0..1000).map(|i| (i % 250) as u8).collect();
                    comm.send(1, 1, &data);
                } else {
                    let mut buf = vec![0u8; 1000];
                    assert_eq!(comm.recv(Some(0), Some(1), &mut buf), 1000);
                    assert!(buf.iter().enumerate().all(|(i, &b)| b == (i % 250) as u8));
                }
            });
        }
    }

    #[test]
    fn large_roundtrip_all_strategies() {
        for lmt in STRATEGIES {
            run_rt(2, lmt, |comm| {
                let n = 3 << 20;
                if comm.rank() == 0 {
                    let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
                    comm.send(1, 2, &data);
                } else {
                    let mut buf = vec![0u8; n];
                    assert_eq!(comm.recv(Some(0), Some(2), &mut buf), n);
                    for (i, &b) in buf.iter().enumerate() {
                        assert_eq!(b, (i % 251) as u8, "{lmt:?}: byte {i}");
                    }
                }
            });
        }
    }

    #[test]
    fn tag_matching_with_unexpected() {
        run_rt(2, RtLmt::Direct, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, &[1u8; 100]);
                comm.send(1, 20, &[2u8; 100]);
            } else {
                let mut buf = [0u8; 100];
                comm.recv(Some(0), Some(20), &mut buf);
                assert!(buf.iter().all(|&b| b == 2));
                comm.recv(Some(0), Some(10), &mut buf);
                assert!(buf.iter().all(|&b| b == 1));
            }
        });
    }

    #[test]
    fn ring_of_ranks_all_strategies() {
        for lmt in STRATEGIES {
            run_rt(4, lmt, |comm| {
                let me = comm.rank();
                let n = comm.size();
                let next = (me + 1) % n;
                let prev = (me + n - 1) % n;
                let data = vec![me as u8 + 1; 200_000];
                let mut buf = vec![0u8; 200_000];
                // Odd/even ordering avoids send-send deadlock with the
                // synchronous rendezvous.
                if me.is_multiple_of(2) {
                    comm.send(next, 0, &data);
                    comm.recv(Some(prev), Some(0), &mut buf);
                } else {
                    comm.recv(Some(prev), Some(0), &mut buf);
                    comm.send(next, 0, &data);
                }
                assert!(buf.iter().all(|&b| b == prev as u8 + 1));
            });
        }
    }

    #[test]
    fn many_small_messages_stress() {
        run_rt(3, RtLmt::Direct, |comm| {
            let me = comm.rank();
            if me == 0 {
                for i in 0..200u8 {
                    comm.send(1 + (i as usize % 2), i as i32 % 7, &[i; 64]);
                }
            } else {
                let mut buf = [0u8; 64];
                let mut seen = 0;
                while seen < 100 {
                    comm.recv(Some(0), None, &mut buf);
                    seen += 1;
                }
            }
        });
    }

    #[test]
    fn wildcard_source() {
        run_rt(3, RtLmt::Direct, |comm| {
            let me = comm.rank();
            if me == 2 {
                let mut buf = [0u8; 32];
                for _ in 0..2 {
                    comm.recv(None, Some(5), &mut buf);
                    assert!(buf[0] == 1 || buf[0] == 2);
                }
            } else {
                comm.send(2, 5, &[me as u8 + 1; 32]);
            }
        });
    }
}
