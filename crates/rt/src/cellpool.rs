//! Lock-free free list of fixed-size message cells.
//!
//! Nemesis carves its shared segment into cells; free cells live on a
//! lock-free stack. [`FreeStack`] is the reusable core: a Treiber stack
//! over *indices* (not pointers) with a packed generation tag that
//! avoids the ABA problem without hazard pointers — the head word is
//! `(generation << 32) | index`, and every successful pop bumps the
//! generation. [`CellPool`] layers byte storage on top for the eager
//! path; the receive queue (`crate::queue`) recycles its cache-aligned
//! packet cells through a `FreeStack` of its own, which is what makes
//! its enqueue path allocation-free.

use std::sync::atomic::{AtomicU64, Ordering};

const NIL: u32 = u32::MAX;

/// A lock-free stack of free indices `0..n` with ABA generation tags.
///
/// `push_chain` publishes a whole batch of indices with a single
/// successful CAS on the head word — the consumer-side analogue of the
/// single control-line charge the simulated stack models for batched
/// dequeues.
pub struct FreeStack {
    /// Packed head: upper 32 bits generation, lower 32 bits index.
    head: AtomicU64,
    /// `next[i]` = index below cell `i` on the stack (NIL = bottom).
    next: Vec<AtomicU64>,
}

impl FreeStack {
    /// A stack holding every index in `0..n` (0 on top).
    pub fn full(n: usize) -> Self {
        assert!(n > 0 && (n as u64) < NIL as u64);
        let next: Vec<AtomicU64> = (0..n)
            .map(|i| {
                let below = if i + 1 < n {
                    (i + 1) as u64
                } else {
                    NIL as u64
                };
                AtomicU64::new(below)
            })
            .collect();
        Self {
            head: AtomicU64::new(0), // generation 0, index 0
            next,
        }
    }

    pub fn capacity(&self) -> usize {
        self.next.len()
    }

    #[inline]
    fn unpack(word: u64) -> (u32, u32) {
        ((word >> 32) as u32, word as u32)
    }

    #[inline]
    fn pack(generation: u32, index: u32) -> u64 {
        (generation as u64) << 32 | index as u64
    }

    /// Pop a free index; `None` when exhausted. Lock-free.
    pub fn try_pop(&self) -> Option<usize> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (generation, index) = Self::unpack(head);
            if index == NIL {
                return None;
            }
            let below = self.next[index as usize].load(Ordering::Acquire) as u32;
            let new = Self::pack(generation.wrapping_add(1), below);
            match self
                .head
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(index as usize),
                Err(actual) => head = actual,
            }
        }
    }

    /// Push an index back. Lock-free. The caller must own the index
    /// (from a prior `try_pop`).
    pub fn push(&self, index: usize) {
        assert!(index < self.next.len(), "bogus cell index");
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (generation, top) = Self::unpack(head);
            self.next[index].store(top as u64, Ordering::Release);
            let new = Self::pack(generation.wrapping_add(1), index as u32);
            match self
                .head
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Push a batch of owned indices with one successful CAS: the chain
    /// is linked privately (`indices[0]` ends on top), then spliced onto
    /// the stack in a single head update.
    pub fn push_chain(&self, indices: &[usize]) {
        let Some((&first, rest)) = indices.split_first() else {
            return;
        };
        assert!(
            indices.iter().all(|&i| i < self.next.len()),
            "bogus cell index"
        );
        // Link the private chain top-down: indices[k] -> indices[k+1].
        let mut above = first;
        for &i in rest {
            self.next[above].store(i as u64, Ordering::Release);
            above = i;
        }
        let last = above;
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (generation, top) = Self::unpack(head);
            self.next[last].store(top as u64, Ordering::Release);
            let new = Self::pack(generation.wrapping_add(1), first as u32);
            match self
                .head
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Number of currently free indices (O(n); diagnostics only — the
    /// answer may be stale by the time it returns).
    pub fn free_count(&self) -> usize {
        let mut n = 0;
        let (_, mut idx) = Self::unpack(self.head.load(Ordering::Acquire));
        while idx != NIL {
            n += 1;
            idx = self.next[idx as usize].load(Ordering::Acquire) as u32;
            if n > self.next.len() {
                break; // racing mutation; good enough for diagnostics
            }
        }
        n
    }
}

/// 2 MiB — the x86-64 huge-page size the slab aligns to.
const HUGE_PAGE: usize = 2 << 20;

/// `MADV_HUGEPAGE` from `<linux/mman.h>` (declared locally — the
/// workspace has no libc crate; std already links the platform libc).
#[cfg(target_os = "linux")]
const MADV_HUGEPAGE: i32 = 14;

#[cfg(target_os = "linux")]
extern "C" {
    fn madvise(addr: *mut core::ffi::c_void, length: usize, advice: i32) -> i32;
}

/// The pool's backing storage: one contiguous allocation, 2 MiB-aligned
/// and advised as transparent-huge-page-backed when possible. Boxed
/// per-cell slabs forced a page walk (and a TLB entry) per 4 KiB of
/// payload on the eager hot path; a huge-page slab covers the whole
/// cell pool with a handful of TLB entries. Falls back silently to an
/// ordinary allocation when the aligned request fails or `madvise` is
/// unsupported — the pool works identically either way.
struct Slab {
    ptr: std::ptr::NonNull<u8>,
    layout: std::alloc::Layout,
}

// The slab itself is plain memory; all aliasing discipline lives in
// `CellPool::with_cell` (per-cell guard over disjoint ranges).
unsafe impl Send for Slab {}
unsafe impl Sync for Slab {}

impl Slab {
    fn new(len: usize) -> Self {
        let len = len.max(1);
        // Round the backing to whole huge pages so the advice covers
        // the tail; retry at cache-line alignment if the huge request
        // fails (silent fallback).
        let huge = std::alloc::Layout::from_size_align(
            len.div_ceil(HUGE_PAGE).max(1) * HUGE_PAGE,
            HUGE_PAGE,
        )
        .expect("huge slab layout");
        // SAFETY: layout has nonzero size.
        if let Some(ptr) = std::ptr::NonNull::new(unsafe { std::alloc::alloc_zeroed(huge) }) {
            #[cfg(target_os = "linux")]
            // SAFETY: the range is owned and huge-page aligned; the
            // advice is a hint and any error is deliberately ignored.
            unsafe {
                madvise(ptr.as_ptr().cast(), huge.size(), MADV_HUGEPAGE);
            }
            return Self { ptr, layout: huge };
        }
        let small = std::alloc::Layout::from_size_align(len, 64).expect("slab layout");
        let ptr = std::ptr::NonNull::new(unsafe { std::alloc::alloc_zeroed(small) })
            .unwrap_or_else(|| std::alloc::handle_alloc_error(small));
        Self { ptr, layout: small }
    }
}

impl Drop for Slab {
    fn drop(&mut self) {
        // SAFETY: allocated in `new` with exactly this layout.
        unsafe { std::alloc::dealloc(self.ptr.as_ptr(), self.layout) }
    }
}

/// A pool of `n` cells of `cell_size` bytes each, with a lock-free
/// free-list. Payload storage is owned by the pool; cells are checked
/// out as indices and accessed via [`CellPool::with_cell`].
pub struct CellPool {
    free: FreeStack,
    slab: Slab,
    /// Per-cell access guards (uncontended by construction — one owner
    /// per checked-out cell; they make the disjointness contract of
    /// `with_cell` explicit and checkable).
    guards: Vec<parking_lot::Mutex<()>>,
    cell_size: usize,
}

impl CellPool {
    pub fn new(n: usize, cell_size: usize) -> Self {
        Self {
            free: FreeStack::full(n),
            slab: Slab::new(n * cell_size),
            guards: (0..n).map(|_| parking_lot::Mutex::new(())).collect(),
            cell_size,
        }
    }

    pub fn cell_size(&self) -> usize {
        self.cell_size
    }

    pub fn capacity(&self) -> usize {
        self.free.capacity()
    }

    /// Pop a free cell; `None` when exhausted. Lock-free.
    pub fn try_acquire(&self) -> Option<usize> {
        self.free.try_pop()
    }

    /// Push a cell back. Lock-free. The caller must own the cell (from a
    /// prior `try_acquire`).
    pub fn release(&self, index: usize) {
        self.free.push(index);
    }

    /// Access a checked-out cell's payload.
    pub fn with_cell<R>(&self, index: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let _guard = self.guards[index].lock();
        // SAFETY: cells are disjoint `cell_size` ranges of the slab;
        // the per-cell guard holds the range exclusively for the
        // duration of the borrow.
        let cell = unsafe {
            std::slice::from_raw_parts_mut(
                self.slab.ptr.as_ptr().add(index * self.cell_size),
                self.cell_size,
            )
        };
        f(cell)
    }

    /// Number of currently free cells (O(n); diagnostics only).
    pub fn free_count(&self) -> usize {
        self.free.free_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn acquire_all_then_exhausted() {
        let pool = CellPool::new(4, 64);
        let mut got = HashSet::new();
        for _ in 0..4 {
            assert!(got.insert(pool.try_acquire().unwrap()));
        }
        assert_eq!(pool.try_acquire(), None);
        for i in got {
            pool.release(i);
        }
        assert_eq!(pool.free_count(), 4);
    }

    #[test]
    fn payload_roundtrip() {
        let pool = CellPool::new(2, 128);
        assert_eq!(pool.cell_size(), 128);
        let c = pool.try_acquire().unwrap();
        pool.with_cell(c, |d| d.fill(7));
        pool.with_cell(c, |d| assert!(d.iter().all(|&x| x == 7)));
        pool.release(c);
    }

    #[test]
    fn slab_is_huge_page_aligned() {
        // The backing slab requests 2 MiB alignment so the THP advice
        // can take effect; cell 0 sits at the slab base.
        let pool = CellPool::new(4, 16 << 10);
        let base = pool.with_cell(0, |d| d.as_ptr() as usize);
        assert_eq!(base % HUGE_PAGE, 0, "slab base not huge-page aligned");
        let c1 = pool.with_cell(1, |d| d.as_ptr() as usize);
        assert_eq!(c1, base + pool.cell_size(), "cells not contiguous");
    }

    #[test]
    fn lifo_reuse() {
        let pool = CellPool::new(3, 8);
        let a = pool.try_acquire().unwrap();
        pool.release(a);
        let b = pool.try_acquire().unwrap();
        assert_eq!(a, b, "Treiber stack reuses the hottest cell");
    }

    #[test]
    fn push_chain_publishes_whole_batch() {
        let stack = FreeStack::full(8);
        let mut held = Vec::new();
        for _ in 0..8 {
            held.push(stack.try_pop().unwrap());
        }
        assert_eq!(stack.try_pop(), None);
        stack.push_chain(&held[..5]);
        assert_eq!(stack.free_count(), 5);
        // The first pushed index ends on top (LIFO over the batch).
        assert_eq!(stack.try_pop(), Some(held[0]));
        stack.push_chain(&held[5..]);
        stack.push(held[0]);
        assert_eq!(stack.free_count(), 8);
        let mut seen = HashSet::new();
        while let Some(i) = stack.try_pop() {
            assert!(seen.insert(i), "index handed out twice");
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn push_chain_empty_is_noop() {
        let stack = FreeStack::full(2);
        stack.push_chain(&[]);
        assert_eq!(stack.free_count(), 2);
    }

    #[test]
    fn concurrent_acquire_release_no_double_handout() {
        const THREADS: usize = 4;
        const ITERS: usize = 20_000;
        let pool = Arc::new(CellPool::new(8, 16));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..ITERS {
                        if let Some(c) = pool.try_acquire() {
                            // Stamp and verify: if two threads ever hold
                            // the same cell, the stamp check fails.
                            let stamp = (t * ITERS + i) as u64;
                            pool.with_cell(c, |d| d[..8].copy_from_slice(&stamp.to_le_bytes()));
                            std::hint::spin_loop();
                            pool.with_cell(c, |d| {
                                let got = u64::from_le_bytes(d[..8].try_into().unwrap());
                                assert_eq!(got, stamp, "cell handed out twice");
                            });
                            pool.release(c);
                        }
                    }
                });
            }
        });
        assert_eq!(pool.free_count(), 8);
    }

    #[test]
    fn concurrent_chain_pushes_keep_all_indices() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 5_000;
        let stack = Arc::new(FreeStack::full(32));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let stack = Arc::clone(&stack);
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        let mut batch = Vec::new();
                        for _ in 0..4 {
                            if let Some(i) = stack.try_pop() {
                                batch.push(i);
                            }
                        }
                        stack.push_chain(&batch);
                    }
                });
            }
        });
        assert_eq!(stack.free_count(), 32, "indices lost or duplicated");
    }

    #[test]
    #[should_panic(expected = "bogus")]
    fn bogus_release_panics() {
        let pool = CellPool::new(2, 8);
        pool.release(99);
    }
}
