//! The real-thread transfer tuner — the rt mirror of
//! `nemesis_core::lmt::tuner`.
//!
//! The simulated tuner learns from virtual-time samples; this one
//! learns from wall-clock timings on the host machine, per directed
//! rank pair: every rendezvous completion records an
//! [`RtTransferSample`], and the double-buffer ring (when driven by the
//! `Learned` schedule) records each fully-absorbed chunk's timing. The
//! published decisions are plain atomics — a pipe reads its learned
//! chunk target with one `load` per chunk, no lock, no allocation (the
//! same hot-path contract `tests/queue_alloc.rs` enforces on the queue
//! paths).
//!
//! The two stacks deliberately share vocabulary, not code: the rt crate
//! does not depend on `nemesis-core`, so the small EWMA chunk model is
//! mirrored here in nanoseconds rather than simulated picoseconds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

/// Which chunk schedule the double-buffer ring pipelines with — the rt
/// mirror of `nemesis_core::ChunkScheduleSelect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RtChunkScheduleSelect {
    /// Geometric growth from the start chunk to the slot capacity.
    #[default]
    Adaptive,
    /// Constant full-slot chunks (the seed's fixed chunking).
    Fixed,
    /// Geometric growth toward the per-pair sweet spot learned from
    /// observed per-chunk times.
    Learned,
}

/// One completed rendezvous transfer, as observed by the receiver.
#[derive(Debug, Clone, Copy)]
pub struct RtTransferSample {
    /// Backend label (`RtLmtBackend::name`).
    pub backend: &'static str,
    /// Whether the copy ran off-CPU (the offload engine).
    pub offload: bool,
    /// Payload length in bytes.
    pub bytes: usize,
    /// Wall-clock receive time in nanoseconds.
    pub nanos: u64,
}

/// Chunk classes cover 2^9 (512 B) .. 2^(9+NCLASSES-1) = 1 MiB.
const CLASS_BASE: u32 = 9;
const NCLASSES: usize = 12;
const MIN_SAMPLES: u32 = 3;
const ALPHA: f64 = 0.25;
const HYSTERESIS: f64 = 1.05;

/// The host's last-level cache size in bytes — the prior for the
/// temporal-vs-streaming-store threshold (a destination below it fits
/// in cache, so regular stores keep it hot; past it the write-allocate
/// traffic is pure waste). Read once from sysfs; falls back to 32 MiB
/// when the cache topology isn't exposed (containers, non-Linux).
pub fn host_llc_size() -> usize {
    static LLC: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *LLC.get_or_init(|| probe_llc_size().unwrap_or(32 << 20))
}

fn probe_llc_size() -> Option<usize> {
    let cache = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
    let mut best: Option<(u32, usize)> = None;
    // Entries that aren't cache indices (uevent, power, …) are skipped,
    // not fatal — only a directory with both `level` and `size` counts.
    for entry in std::fs::read_dir(cache).ok()?.flatten() {
        let p = entry.path();
        let level = std::fs::read_to_string(p.join("level"))
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok());
        let bytes = std::fs::read_to_string(p.join("size")).ok().and_then(|s| {
            let s = s.trim();
            if let Some(k) = s.strip_suffix('K') {
                k.parse::<usize>().ok().map(|v| v << 10)
            } else if let Some(m) = s.strip_suffix('M') {
                m.parse::<usize>().ok().map(|v| v << 20)
            } else {
                s.parse::<usize>().ok()
            }
        });
        if let (Some(level), Some(bytes)) = (level, bytes) {
            if best.is_none_or(|(l, _)| level > l) {
                best = Some((level, bytes));
            }
        }
    }
    best.map(|(_, b)| b)
}

fn class_of(bytes: usize) -> usize {
    let lg = if bytes == 0 { 0 } else { bytes.ilog2() };
    (lg.saturating_sub(CLASS_BASE) as usize).min(NCLASSES - 1)
}

#[derive(Debug, Default, Clone, Copy)]
struct Cell {
    /// EWMA throughput in bytes per nanosecond.
    bw: f64,
    n: u32,
}

#[derive(Debug, Default)]
struct ChunkModel {
    cells: [Cell; NCLASSES],
    published: Option<usize>,
}

impl ChunkModel {
    fn observe(&mut self, bytes: usize, nanos: u64) -> Option<usize> {
        let c = class_of(bytes);
        let bw = bytes as f64 / nanos as f64;
        let cell = &mut self.cells[c];
        cell.bw = if cell.n == 0 {
            bw
        } else {
            ALPHA * bw + (1.0 - ALPHA) * cell.bw
        };
        cell.n += 1;
        let best = (0..NCLASSES)
            .filter(|&i| self.cells[i].n >= MIN_SAMPLES)
            .max_by(|&a, &b| self.cells[a].bw.total_cmp(&self.cells[b].bw))?;
        let unseat = match self.published {
            None => true,
            Some(inc) => self.cells[best].bw > self.cells[inc].bw * HYSTERESIS,
        };
        if unseat {
            self.published = Some(best);
        }
        self.published.map(|c| 1usize << (CLASS_BASE + c as u32))
    }
}

/// NT (streaming-store) crossover classes cover 2^16 (64 KiB) ..
/// 2^(16+NT_NCLASSES-1) = 128 MiB — the band where a destination
/// plausibly stops fitting in cache on any host.
const NT_CLASS_BASE: u32 = 16;
const NT_NCLASSES: usize = 12;
/// A flavour must lead by 10% to flip a class's verdict — EWMA wobble
/// inside the band keeps the previous verdict (and the published
/// threshold) sticky.
const NT_HYSTERESIS: f64 = 1.1;
/// Every 8th decision whose length falls within [T/4, 4T) runs the
/// *other* flavour, keeping both sides of the crossover sampled so the
/// threshold can track regime changes.
const NT_EXPLORE_PERIOD: usize = 8;
/// Published when temporal wins at every sampled class: one class above
/// the model's range (256 MiB), NOT `usize::MAX` — the explore band
/// around it stays reachable, so huge transfers keep re-probing NT.
const NT_SENTINEL: usize = 1 << (NT_CLASS_BASE + NT_NCLASSES as u32);

fn nt_class_of(bytes: usize) -> usize {
    let lg = if bytes == 0 { 0 } else { bytes.ilog2() };
    (lg.saturating_sub(NT_CLASS_BASE) as usize).min(NT_NCLASSES - 1)
}

/// Temporal-vs-streaming-store crossover learner: per size class, an
/// EWMA bandwidth for each store flavour and a sticky verdict. The
/// published threshold is the lower bound of the smallest class where
/// streaming stores win.
#[derive(Debug, Default)]
struct NtModel {
    temporal: [Cell; NT_NCLASSES],
    nt: [Cell; NT_NCLASSES],
    /// +1 = NT wins here, -1 = temporal wins, 0 = undecided.
    verdict: [i8; NT_NCLASSES],
}

impl NtModel {
    /// Fold one timed copy in and return the threshold to publish
    /// (0 = nothing decided anywhere yet).
    fn observe(&mut self, nt: bool, bytes: usize, nanos: u64) -> usize {
        let c = nt_class_of(bytes);
        let bw = bytes as f64 / nanos as f64;
        let cell = if nt {
            &mut self.nt[c]
        } else {
            &mut self.temporal[c]
        };
        cell.bw = if cell.n == 0 {
            bw
        } else {
            ALPHA * bw + (1.0 - ALPHA) * cell.bw
        };
        cell.n += 1;
        let (t, n) = (self.temporal[c], self.nt[c]);
        if t.n >= MIN_SAMPLES && n.n >= MIN_SAMPLES {
            if n.bw > t.bw * NT_HYSTERESIS {
                self.verdict[c] = 1;
            } else if t.bw > n.bw * NT_HYSTERESIS {
                self.verdict[c] = -1;
            } else if self.verdict[c] == 0 {
                // First decision with no clear margin: lean whichever
                // way the EWMAs point; later samples inside the band
                // will not flip it back and forth.
                self.verdict[c] = if n.bw > t.bw { 1 } else { -1 };
            }
        }
        match (0..NT_NCLASSES).find(|&i| self.verdict[i] > 0) {
            Some(c) => 1usize << (NT_CLASS_BASE + c as u32),
            None if self.verdict.iter().any(|&v| v < 0) => NT_SENTINEL,
            None => 0,
        }
    }
}

/// The shared per-socket-pair NT crossover cell. The temporal-vs-NT
/// break-even is a property of the *memory system between two
/// sockets* — cache sizes, ring/QPI bandwidth — not of the rank pair
/// that happens to traverse it, so every pair re-learning it from the
/// LLC prior is wasted exploration at many ranks. Pairs read this cell
/// as their prior while their own model is unlearned and donate every
/// republished verdict back, so the first pair to converge on a socket
/// pair seeds all later ones. A pair's own published threshold always
/// overrides the shared cell (a pinned-thread pair may genuinely
/// differ, e.g. by sharing an L2).
#[derive(Debug, Default)]
pub struct SocketNtPrior {
    /// Latest donated threshold in bytes (0 = no donation yet).
    nt_min: AtomicUsize,
    /// Donations folded in (diagnostics).
    donors: AtomicU64,
}

impl SocketNtPrior {
    /// The donated threshold (0 = none yet).
    pub fn threshold(&self) -> usize {
        self.nt_min.load(Ordering::Relaxed)
    }

    /// Donations received (diagnostics).
    pub fn donors(&self) -> u64 {
        self.donors.load(Ordering::Relaxed)
    }

    fn donate(&self, t: usize) {
        self.nt_min.store(t, Ordering::Relaxed);
        self.donors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Learned state of one directed rank pair. The chunk target is the
/// hot-path read; the models behind it update under a small mutex at
/// recording time only.
#[derive(Debug)]
pub struct RtPairTune {
    /// Published chunk sweet spot in bytes (0 = nothing learned).
    target: AtomicUsize,
    /// Published NT-store threshold in bytes (0 = nothing learned —
    /// callers fall back to the host-LLC prior).
    nt_min: AtomicUsize,
    /// Decision counter driving the in-band explore cadence.
    nt_explore: AtomicUsize,
    /// Transfer samples accepted (diagnostics).
    samples: AtomicU64,
    /// EWMA transfer bandwidths in MiB/s ×1000 (fixed point), copy and
    /// offload — report context.
    copy_bw: AtomicU64,
    offload_bw: AtomicU64,
    chunk_model: Mutex<ChunkModel>,
    nt_model: Mutex<NtModel>,
    /// The socket pair's shared NT cell (None for standalone cells,
    /// e.g. in unit tests): read as the prior while this pair is
    /// unlearned, donated into on every republish.
    socket_nt: Option<Arc<SocketNtPrior>>,
}

impl RtPairTune {
    /// A standalone cell with no socket back-pointer (unit tests; real
    /// cells are built by [`RtTuner::pair`] with the cell installed).
    #[cfg(test)]
    fn new() -> Self {
        Self::with_socket_nt(None)
    }

    fn with_socket_nt(socket_nt: Option<Arc<SocketNtPrior>>) -> Self {
        Self {
            target: AtomicUsize::new(0),
            nt_min: AtomicUsize::new(0),
            nt_explore: AtomicUsize::new(0),
            samples: AtomicU64::new(0),
            copy_bw: AtomicU64::new(0),
            offload_bw: AtomicU64::new(0),
            chunk_model: Mutex::new(ChunkModel::default()),
            nt_model: Mutex::new(NtModel::default()),
            socket_nt,
        }
    }

    /// The published chunk sweet spot (0 = none yet). One atomic load —
    /// safe on the per-chunk path.
    pub fn target(&self) -> usize {
        self.target.load(Ordering::Relaxed)
    }

    /// Fold one fully-absorbed chunk's wall-clock timing into the model
    /// and republish the sweet spot.
    pub fn record_chunk(&self, bytes: usize, nanos: u64) {
        if bytes == 0 || nanos == 0 {
            return;
        }
        if let Some(t) = self.chunk_model.lock().observe(bytes, nanos) {
            self.target.store(t, Ordering::Relaxed);
        }
    }

    fn record_transfer(&self, s: &RtTransferSample) {
        if s.bytes == 0 || s.nanos == 0 {
            return;
        }
        self.samples.fetch_add(1, Ordering::Relaxed);
        let mib_s_x1000 =
            (s.bytes as f64 / (1 << 20) as f64 / (s.nanos as f64 * 1e-9) * 1000.0) as u64;
        let slot = if s.offload {
            &self.offload_bw
        } else {
            &self.copy_bw
        };
        let prev = slot.load(Ordering::Relaxed);
        let next = if prev == 0 {
            mib_s_x1000
        } else {
            (mib_s_x1000 + 3 * prev) / 4
        };
        slot.store(next, Ordering::Relaxed);
    }

    /// EWMA transfer bandwidth in MiB/s for the copy / offload classes
    /// (0.0 = unsampled).
    pub fn bandwidth_mib_s(&self) -> (f64, f64) {
        (
            self.copy_bw.load(Ordering::Relaxed) as f64 / 1000.0,
            self.offload_bw.load(Ordering::Relaxed) as f64 / 1000.0,
        )
    }

    /// Transfer samples accepted.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Fold one timed ring→user copy into the NT crossover model and
    /// republish the threshold. `nanos` is pure copy time (waiting on
    /// the sender excluded — that would smear both flavours equally and
    /// wash out the crossover).
    pub fn record_copy_mode(&self, nt: bool, bytes: usize, nanos: u64) {
        if bytes == 0 || nanos == 0 {
            return;
        }
        let t = self.nt_model.lock().observe(nt, bytes, nanos);
        if t != 0 {
            self.nt_min.store(t, Ordering::Relaxed);
            if let Some(cell) = &self.socket_nt {
                cell.donate(t);
            }
        }
    }

    /// The learned NT threshold in bytes. Fallback chain while this
    /// pair is unlearned: the socket pair's donated verdict first, then
    /// `prior` (typically [`host_llc_size`]).
    pub fn nt_threshold(&self, prior: usize) -> usize {
        match self.nt_min.load(Ordering::Relaxed) {
            0 => match self.socket_nt.as_ref().map_or(0, |c| c.threshold()) {
                0 => prior.max(1),
                t => t,
            },
            t => t,
        }
    }

    /// The raw learned NT threshold (0 = unlearned) — diagnostics.
    pub fn nt_min(&self) -> usize {
        self.nt_min.load(Ordering::Relaxed)
    }

    /// Should a `len`-byte ring→user copy use streaming stores? By
    /// threshold, except every [`NT_EXPLORE_PERIOD`]th decision whose
    /// length lands within [T/4, 4T) runs the opposite flavour so the
    /// model keeps seeing both sides of the crossover. Out-of-band
    /// lengths never explore — the answer there is not in doubt.
    pub fn nt_decision(&self, len: usize, prior: usize) -> bool {
        let t = self.nt_threshold(prior);
        let by_threshold = len >= t;
        if len >= t / 4 && len < t.saturating_mul(4) {
            let k = self.nt_explore.fetch_add(1, Ordering::Relaxed);
            if k % NT_EXPLORE_PERIOD == NT_EXPLORE_PERIOD - 1 {
                return !by_threshold;
            }
        }
        by_threshold
    }
}

/// Arms of the real-thread backend selector, in probe order — the rt
/// mirror of `nemesis_core::lmt::tuner::selector::ARMS` over the rt
/// mechanism families (no pipe variants on the host stack; `Striped(1)`
/// is CMA with extra bookkeeping and therefore not an arm).
pub const RT_SELECTOR_ARMS: usize = 7;

/// Selector size classes cover 2^14 (16 KiB, just below the rt
/// eager/rendezvous switchover) .. 2^(14+7) = 2 MiB+.
const SEL_CLASS_BASE: u32 = 14;
const SEL_NCLASSES: usize = 8;
const SEL_MIN_PROBE: u32 = 2;
const SEL_PROBE_START: u64 = 16;
const SEL_PROBE_CAP: u64 = 1024;

fn sel_class_of(bytes: usize) -> usize {
    let lg = if bytes == 0 { 0 } else { bytes.ilog2() };
    (lg.saturating_sub(SEL_CLASS_BASE) as usize).min(SEL_NCLASSES - 1)
}

#[derive(Debug, Default, Clone, Copy)]
struct SelCell {
    /// EWMA throughput in bytes per nanosecond.
    bw: f64,
    n: u32,
    picked: u32,
}

#[derive(Debug, Clone, Copy)]
struct SelClass {
    cells: [SelCell; RT_SELECTOR_ARMS],
    tick: u64,
    next_probe: u64,
    probe_interval: u64,
    probe_cursor: usize,
    /// Remaining repeats of the current probe (streaks of two — the
    /// second sample measures the mechanism warm).
    probe_streak: u8,
    incumbent: usize,
}

impl Default for SelClass {
    fn default() -> Self {
        Self {
            cells: [SelCell::default(); RT_SELECTOR_ARMS],
            tick: 0,
            next_probe: 0,
            probe_interval: SEL_PROBE_START,
            probe_cursor: 0,
            probe_streak: 0,
            incumbent: usize::MAX,
        }
    }
}

/// The learned backend selector of one directed rank pair — the rt
/// mirror of the simulated stack's per-(pair, size-class) bandit:
/// sweep every arm [`SEL_MIN_PROBE`] times, then exploit the best
/// wall-clock bandwidth EWMA with exponentially-spaced minority probes.
/// Deterministic in its decision sequence (the measured rewards are
/// wall-clock, the schedule is not randomized).
#[derive(Debug, Default)]
pub struct RtPairSelector {
    classes: Mutex<[SelClass; SEL_NCLASSES]>,
}

impl RtPairSelector {
    /// Pick the arm for one `len`-byte transfer.
    pub fn pick(&self, len: usize) -> usize {
        let mut classes = self.classes.lock();
        let s = &mut classes[sel_class_of(len)];
        s.tick += 1;
        // Depth-first sweep: back-to-back probes per arm, so the second
        // sample measures the mechanism warm (the provisional first
        // eats the cold-start; see the core selector for the
        // rationale).
        if let Some(arm) = (0..RT_SELECTOR_ARMS)
            .find(|&a| s.cells[a].n < SEL_MIN_PROBE && s.cells[a].picked < 2 * SEL_MIN_PROBE)
        {
            s.cells[arm].picked += 1;
            return arm;
        }
        if s.probe_streak > 0 {
            s.probe_streak -= 1;
            s.cells[s.probe_cursor].picked += 1;
            return s.probe_cursor;
        }
        if s.next_probe == 0 {
            s.next_probe = s.tick + s.probe_interval;
        } else if s.tick >= s.next_probe {
            s.probe_interval = (s.probe_interval * 2).min(SEL_PROBE_CAP);
            s.next_probe = s.tick + s.probe_interval;
            s.probe_cursor = (s.probe_cursor + 1) % RT_SELECTOR_ARMS;
            s.probe_streak = 1;
            s.cells[s.probe_cursor].picked += 1;
            return s.probe_cursor;
        }
        let best = (0..RT_SELECTOR_ARMS)
            .max_by(|&a, &b| s.cells[a].bw.total_cmp(&s.cells[b].bw))
            .unwrap_or(0);
        let inc = s.incumbent;
        if inc >= RT_SELECTOR_ARMS || s.cells[best].bw > s.cells[inc].bw * HYSTERESIS {
            s.incumbent = best;
        }
        s.cells[s.incumbent].picked += 1;
        s.incumbent
    }

    /// Fold one completed transfer's wall-clock bandwidth into the
    /// arm's cell. The first sample per arm is provisional — fully
    /// replaced by the second — because a mechanism's first use pays
    /// cold-start costs (thread wakeup, ring creation, cache state)
    /// that would otherwise dominate the EWMA and mis-rank the arm.
    pub fn observe(&self, arm: usize, bytes: usize, nanos: u64) {
        if arm >= RT_SELECTOR_ARMS || bytes == 0 || nanos == 0 {
            return;
        }
        let mut classes = self.classes.lock();
        let cell = &mut classes[sel_class_of(bytes)].cells[arm];
        let bw = bytes as f64 / nanos as f64;
        cell.bw = if cell.n <= 1 {
            bw
        } else {
            ALPHA * bw + (1.0 - ALPHA) * cell.bw
        };
        cell.n += 1;
    }

    /// The arm's `(bandwidth EWMA, samples)` in the class containing
    /// `bytes` (diagnostics and tests).
    pub fn cell(&self, bytes: usize, arm: usize) -> (f64, u32) {
        let c = self.classes.lock()[sel_class_of(bytes)].cells[arm.min(RT_SELECTOR_ARMS - 1)];
        (c.bw, c.n)
    }
}

/// The learned collective kinds — the rt mirror of the simulated
/// selector's `CollKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtCollKind {
    Bcast,
    Reduce,
    Allgather,
    Alltoall,
}

impl RtCollKind {
    fn code(self) -> usize {
        match self {
            RtCollKind::Bcast => 0,
            RtCollKind::Reduce => 1,
            RtCollKind::Allgather => 2,
            RtCollKind::Alltoall => 3,
        }
    }
}

/// Learned collective kinds.
const COLL_KINDS: usize = 4;
/// Algorithm arms per collective (0 = classic fixed, 1 = alternate).
pub const RT_COLL_ARMS: usize = 2;
/// Group-size classes: 2, 3–4, 5–8, 9+ members.
const COLL_GCLASSES: usize = 4;
/// Collective message classes start at 2^10 (collectives run far below
/// the rendezvous switchover too).
const COLL_CLASS_BASE: u32 = 10;
const COLL_NCLASSES: usize = 8;

fn coll_gclass_of(n: usize) -> usize {
    match n {
        0..=2 => 0,
        3..=4 => 1,
        5..=8 => 2,
        _ => 3,
    }
}

fn coll_class_of(bytes: usize) -> usize {
    let lg = if bytes == 0 { 0 } else { bytes.ilog2() };
    (lg.saturating_sub(COLL_CLASS_BASE) as usize).min(COLL_NCLASSES - 1)
}

/// One (kind, group-size class, message class) cell of the collective
/// algorithm bandit — the same sweep → probe → exploit skeleton as
/// [`RtPairSelector`], over [`RT_COLL_ARMS`] arms. Unlike the simulated
/// model there is no `(group id, sequence)` memo: on real threads only
/// one member (the operation's root) consults the bandit, and the
/// chosen arm rides a one-byte broadcast to the rest of the group, so
/// the decision is made exactly once per operation.
#[derive(Debug, Clone, Copy)]
struct CollClass {
    cells: [SelCell; RT_COLL_ARMS],
    tick: u64,
    next_probe: u64,
    probe_interval: u64,
    probe_cursor: usize,
    probe_streak: u8,
    incumbent: usize,
}

impl Default for CollClass {
    fn default() -> Self {
        Self {
            cells: [SelCell::default(); RT_COLL_ARMS],
            tick: 0,
            next_probe: 0,
            probe_interval: SEL_PROBE_START,
            probe_cursor: 0,
            probe_streak: 0,
            incumbent: usize::MAX,
        }
    }
}

impl CollClass {
    fn pick(&mut self) -> usize {
        self.tick += 1;
        if let Some(arm) = (0..RT_COLL_ARMS)
            .find(|&a| self.cells[a].n < SEL_MIN_PROBE && self.cells[a].picked < 2 * SEL_MIN_PROBE)
        {
            self.cells[arm].picked += 1;
            return arm;
        }
        if self.probe_streak > 0 {
            self.probe_streak -= 1;
            let arm = self.probe_cursor % RT_COLL_ARMS;
            self.cells[arm].picked += 1;
            return arm;
        }
        if self.next_probe == 0 {
            self.next_probe = self.tick + self.probe_interval;
        } else if self.tick >= self.next_probe {
            self.probe_interval = (self.probe_interval * 2).min(SEL_PROBE_CAP);
            self.next_probe = self.tick + self.probe_interval;
            self.probe_cursor = (self.probe_cursor + 1) % RT_COLL_ARMS;
            self.probe_streak = 1;
            let arm = self.probe_cursor;
            self.cells[arm].picked += 1;
            return arm;
        }
        let best = (0..RT_COLL_ARMS)
            .max_by(|&a, &b| self.cells[a].bw.total_cmp(&self.cells[b].bw))
            .unwrap_or(0);
        let inc = self.incumbent;
        if inc >= RT_COLL_ARMS || self.cells[best].bw > self.cells[inc].bw * HYSTERESIS {
            self.incumbent = best;
        }
        self.cells[self.incumbent].picked += 1;
        self.incumbent
    }
}

/// The collective algorithm bandit — run-global (a collective involves
/// a whole group, not a pair), keyed by (kind, group-size class,
/// message class). The rt mirror of the simulated `CollAlgModel`;
/// rewards are wall-clock whole-operation bandwidths.
#[derive(Debug)]
pub struct RtCollModel {
    classes: [[[CollClass; COLL_NCLASSES]; COLL_GCLASSES]; COLL_KINDS],
}

impl Default for RtCollModel {
    fn default() -> Self {
        Self {
            classes: [[[CollClass::default(); COLL_NCLASSES]; COLL_GCLASSES]; COLL_KINDS],
        }
    }
}

impl RtCollModel {
    fn select(&mut self, kind: RtCollKind, gsize: usize, bytes: usize) -> usize {
        self.classes[kind.code()][coll_gclass_of(gsize)][coll_class_of(bytes)].pick()
    }

    fn observe(
        &mut self,
        kind: RtCollKind,
        gsize: usize,
        msg_bytes: usize,
        arm: usize,
        moved_bytes: usize,
        nanos: u64,
    ) {
        if arm >= RT_COLL_ARMS || moved_bytes == 0 || nanos == 0 {
            return;
        }
        let bw = moved_bytes as f64 / nanos as f64;
        let cell = &mut self.classes[kind.code()][coll_gclass_of(gsize)][coll_class_of(msg_bytes)]
            .cells[arm];
        cell.bw = if cell.n <= 1 {
            bw
        } else {
            ALPHA * bw + (1.0 - ALPHA) * cell.bw
        };
        cell.n += 1;
    }

    fn cell(&self, kind: RtCollKind, gsize: usize, msg_bytes: usize, arm: usize) -> (f64, u32) {
        let c = self.classes[kind.code()][coll_gclass_of(gsize)][coll_class_of(msg_bytes)].cells
            [arm.min(RT_COLL_ARMS - 1)];
        (c.bw, c.n)
    }
}

/// The per-run tuner. Pair cells are **lazily materialized** — the map
/// starts empty whatever the rank count, and a directed pair's
/// [`RtPairTune`] is allocated on its first recorded traffic (the rt
/// mirror of the simulated tuner's sublinear state: resident cells
/// track *touched* pairs, never ranks²). Read-only queries on an
/// untouched pair answer the defaults without allocating. The
/// collective algorithm bandit rides along as one run-global model
/// (inline arrays, no heap).
#[derive(Debug)]
pub struct RtTuner {
    pairs: RwLock<HashMap<(usize, usize), Arc<RtPairTune>>>,
    coll: Mutex<RtCollModel>,
    /// Rank → socket placement (unmapped ranks sit on socket 0 — the
    /// right default for the unpinned single-address-space stack).
    /// Populate via [`RtTuner::set_rank_socket`] *before* traffic
    /// materializes pair cells: the socket back-pointer is installed at
    /// materialization time.
    sockets: RwLock<HashMap<usize, usize>>,
    /// Shared NT crossover cells, one per (src socket, dst socket).
    socket_nt: RwLock<HashMap<(usize, usize), Arc<SocketNtPrior>>>,
}

impl RtTuner {
    /// Build an empty tuner. The rank count is irrelevant to the
    /// footprint — state appears per touched pair.
    pub fn new(_nranks: usize) -> Arc<Self> {
        Arc::new(Self {
            pairs: RwLock::new(HashMap::new()),
            coll: Mutex::new(RtCollModel::default()),
            sockets: RwLock::new(HashMap::new()),
            socket_nt: RwLock::new(HashMap::new()),
        })
    }

    /// Declare `rank`'s socket for the per-socket NT prior cells. Call
    /// before the rank's pairs see traffic (existing cells keep the
    /// back-pointer they were built with).
    pub fn set_rank_socket(&self, rank: usize, socket: usize) {
        self.sockets.write().insert(rank, socket);
    }

    /// The declared socket of `rank` (0 when never declared).
    pub fn socket_of(&self, rank: usize) -> usize {
        self.sockets.read().get(&rank).copied().unwrap_or(0)
    }

    /// The shared NT cell for a socket pair, materializing it on first
    /// touch.
    pub fn socket_nt_cell(&self, s_src: usize, s_dst: usize) -> Arc<SocketNtPrior> {
        if let Some(c) = self.socket_nt.read().get(&(s_src, s_dst)) {
            return Arc::clone(c);
        }
        let mut w = self.socket_nt.write();
        Arc::clone(w.entry((s_src, s_dst)).or_default())
    }

    /// Pick the algorithm arm for one collective operation. Call this
    /// from exactly one member per operation (the root) — the arm is
    /// then distributed to the rest of the group in-band, which is what
    /// keeps concurrent groups consistent without a shared memo.
    pub fn select_coll_alg(&self, kind: RtCollKind, gsize: usize, bytes: usize) -> usize {
        self.coll.lock().select(kind, gsize, bytes)
    }

    /// Credit an arm with one completed collective's whole-operation
    /// elapsed wall-clock time.
    pub fn record_coll(
        &self,
        kind: RtCollKind,
        gsize: usize,
        msg_bytes: usize,
        arm: usize,
        moved_bytes: usize,
        nanos: u64,
    ) {
        self.coll
            .lock()
            .observe(kind, gsize, msg_bytes, arm, moved_bytes, nanos);
    }

    /// The learned `(bandwidth, samples)` for a collective arm.
    pub fn coll_cell(
        &self,
        kind: RtCollKind,
        gsize: usize,
        msg_bytes: usize,
        arm: usize,
    ) -> (f64, u32) {
        self.coll.lock().cell(kind, gsize, msg_bytes, arm)
    }

    /// The directed pair's learned state, materializing its cell on
    /// first touch (shared with the pipes that feed and consult it).
    /// The hot path is a read-lock plus an `Arc` clone; the write lock
    /// is taken once per pair lifetime.
    pub fn pair(&self, src: usize, dst: usize) -> Arc<RtPairTune> {
        if let Some(p) = self.pairs.read().get(&(src, dst)) {
            return Arc::clone(p);
        }
        // Resolve the socket cell before taking the pair write lock
        // (both maps are leaf locks; never hold two at once).
        let cell = self.socket_nt_cell(self.socket_of(src), self.socket_of(dst));
        let mut w = self.pairs.write();
        Arc::clone(
            w.entry((src, dst))
                .or_insert_with(|| Arc::new(RtPairTune::with_socket_nt(Some(cell)))),
        )
    }

    /// The pair's state only if traffic already materialized it —
    /// read-only queries must not grow the map.
    fn try_pair(&self, src: usize, dst: usize) -> Option<Arc<RtPairTune>> {
        self.pairs.read().get(&(src, dst)).map(Arc::clone)
    }

    /// Materialized pair cells (the resident-memory diagnostic).
    pub fn resident_pairs(&self) -> usize {
        self.pairs.read().len()
    }

    /// Record one completed rendezvous transfer.
    pub fn record_transfer(&self, src: usize, dst: usize, s: &RtTransferSample) {
        self.pair(src, dst).record_transfer(s);
    }

    /// The directed pair's learned chunk sweet spot, if any.
    pub fn learned_chunk(&self, src: usize, dst: usize) -> Option<usize> {
        match self.try_pair(src, dst).map_or(0, |p| p.target()) {
            0 => None,
            t => Some(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_model_elects_best_class_with_hysteresis() {
        let p = RtPairTune::new();
        for _ in 0..5 {
            p.record_chunk(4 << 10, 4 * (4 << 10) as u64);
            p.record_chunk(32 << 10, 2 * (32 << 10) as u64);
            p.record_chunk(256 << 10, 3 * (256 << 10) as u64);
        }
        assert_eq!(p.target(), 32 << 10);
        // A sub-hysteresis challenger cannot unseat the incumbent.
        for _ in 0..50 {
            p.record_chunk(256 << 10, (2.0 * 0.99 * (256 << 10) as f64) as u64);
        }
        assert_eq!(p.target(), 32 << 10);
    }

    #[test]
    fn degenerate_chunks_and_samples_are_discarded() {
        let t = RtTuner::new(2);
        t.pair(0, 1).record_chunk(0, 100);
        t.pair(0, 1).record_chunk(100, 0);
        t.record_transfer(
            0,
            1,
            &RtTransferSample {
                backend: "direct",
                offload: false,
                bytes: 0,
                nanos: 5,
            },
        );
        assert_eq!(t.learned_chunk(0, 1), None);
        assert_eq!(t.pair(0, 1).samples(), 0);
    }

    #[test]
    fn selector_sweeps_then_converges() {
        let s = RtPairSelector::default();
        let mut seen = [0u32; RT_SELECTOR_ARMS];
        for _ in 0..RT_SELECTOR_ARMS as u32 * SEL_MIN_PROBE {
            let a = s.pick(1 << 20);
            seen[a] += 1;
            // Arm 2 is twice as fast as everyone else.
            s.observe(a, 1 << 20, if a == 2 { 500_000 } else { 1_000_000 });
        }
        assert_eq!(seen, [SEL_MIN_PROBE; RT_SELECTOR_ARMS], "sweep coverage");
        let picks: Vec<usize> = (0..100).map(|_| s.pick(1 << 20)).collect();
        let minority = picks.iter().filter(|&&a| a != 2).count();
        assert!(minority <= 4, "probes must be rare, got {minority}/100");
        assert_eq!(*picks.last().unwrap(), 2);
    }

    #[test]
    fn selector_classes_are_independent() {
        let s = RtPairSelector::default();
        for _ in 0..SEL_MIN_PROBE {
            for a in 0..RT_SELECTOR_ARMS {
                s.pick(32 << 10);
                s.pick(1 << 20);
                s.observe(a, 32 << 10, if a == 0 { 1_000 } else { 9_000 });
                s.observe(a, 1 << 20, if a == 3 { 1_000 } else { 9_000 });
            }
        }
        let small: Vec<usize> = (0..30).map(|_| s.pick(32 << 10)).collect();
        let large: Vec<usize> = (0..30).map(|_| s.pick(1 << 20)).collect();
        assert_eq!(*small.last().unwrap(), 0);
        assert_eq!(*large.last().unwrap(), 3);
    }

    #[test]
    fn pair_cells_materialize_on_traffic_not_rank_count() {
        let t = RtTuner::new(4096);
        assert_eq!(t.resident_pairs(), 0, "construction must allocate nothing");
        // Read-only queries on untouched pairs answer without allocating.
        assert_eq!(t.learned_chunk(17, 4000), None);
        assert_eq!(t.resident_pairs(), 0);
        t.record_transfer(
            3,
            9,
            &RtTransferSample {
                backend: "direct",
                offload: false,
                bytes: 1 << 20,
                nanos: 1_000_000,
            },
        );
        assert_eq!(t.resident_pairs(), 1, "one touched pair, one cell");
        assert_eq!(t.pair(3, 9).samples(), 1);
    }

    /// Feed both store flavours across the NT class range with the
    /// given per-byte costs (ns per MiB), NT paying `nt_setup` extra
    /// fixed nanoseconds per copy (its fence/setup tax, which is what
    /// makes it lose on small copies).
    fn feed_nt(p: &RtPairTune, temporal_ns_per_mib: u64, nt_setup: u64, nt_ns_per_mib: u64) {
        for round in 0..6u64 {
            for lg in NT_CLASS_BASE..NT_CLASS_BASE + NT_NCLASSES as u32 {
                let bytes = 1usize << lg;
                let mib = (bytes as f64 / (1 << 20) as f64).max(1e-9);
                let wobble = 1.0 + (round * 97 % 10) as f64 / 1000.0;
                let t_ns = (temporal_ns_per_mib as f64 * mib * wobble).max(1.0) as u64;
                let n_ns = (nt_ns_per_mib as f64 * mib * wobble).max(1.0) as u64 + nt_setup;
                p.record_copy_mode(false, bytes, t_ns);
                p.record_copy_mode(true, bytes, n_ns);
            }
        }
    }

    #[test]
    fn nt_crossover_publishes_temporal_below_and_nt_above() {
        let p = RtPairTune::new();
        // Unlearned: the prior stands, decisions are by-threshold.
        assert_eq!(p.nt_threshold(8 << 20), 8 << 20);
        assert_eq!(p.nt_min(), 0);
        // Temporal 500 ns/MiB; NT 250 ns/MiB but a 1000 ns fixed setup
        // cost → NT wins only once copies are big enough to amortize
        // it. Break-even at 1000/(250·wobble-ish) MiB ≈ 4 MiB.
        feed_nt(&p, 500, 1000, 250);
        let t = p.nt_min();
        assert!(t != 0, "crossover must publish");
        assert!(
            (1 << 20..=16 << 20).contains(&t),
            "threshold {t} should bracket the ~4 MiB break-even"
        );
        // Far out-of-band decisions are deterministic (no explore).
        for _ in 0..64 {
            assert!(!p.nt_decision(64 << 10, 1), "small copies stay temporal");
            assert!(p.nt_decision(128 << 20, 1), "huge copies stream");
        }
        // Degenerate samples are discarded.
        p.record_copy_mode(true, 0, 5);
        p.record_copy_mode(false, 5, 0);
        assert_eq!(p.nt_min(), t);
    }

    #[test]
    fn nt_in_band_explore_flips_every_eighth_decision() {
        let p = RtPairTune::new();
        let prior = 8 << 20;
        // len = prior is in-band; exactly one of every
        // NT_EXPLORE_PERIOD decisions must flip to temporal.
        let flips = (0..8 * NT_EXPLORE_PERIOD)
            .filter(|_| !p.nt_decision(prior, prior))
            .count();
        assert_eq!(flips, 8, "one explore flip per period");
    }

    #[test]
    fn nt_threshold_is_sticky_under_hysteresis() {
        let p = RtPairTune::new();
        feed_nt(&p, 500, 1000, 250);
        let t = p.nt_min();
        assert!(t != 0);
        // Sub-10% wobble around the published verdicts must not move
        // the threshold.
        for _ in 0..40 {
            p.record_copy_mode(
                false,
                t,
                (t as f64 / (1 << 20) as f64 * 500.0 * 1.04) as u64,
            );
            p.record_copy_mode(
                true,
                t,
                (t as f64 / (1 << 20) as f64 * 250.0 * 1.04) as u64 + 1000,
            );
        }
        assert_eq!(p.nt_min(), t, "threshold wobbled under hysteresis");
        // A real regime flip — temporal now decisively faster at the
        // old threshold class — must raise it.
        for _ in 0..40 {
            p.record_copy_mode(
                false,
                t,
                (t as f64 / (1 << 20) as f64 * 100.0).max(1.0) as u64,
            );
            p.record_copy_mode(true, t, (t as f64 / (1 << 20) as f64 * 250.0) as u64 + 1000);
        }
        assert!(p.nt_min() > t, "regime flip must raise the threshold");
    }

    #[test]
    fn nt_sentinel_when_temporal_wins_everywhere_keeps_explore_reachable() {
        let p = RtPairTune::new();
        // Temporal strictly faster at every class.
        feed_nt(&p, 200, 500, 400);
        assert_eq!(p.nt_min(), NT_SENTINEL);
        // The sentinel is finite: lengths near it are still in the
        // explore band, so NT keeps getting re-probed.
        let flips = (0..8 * NT_EXPLORE_PERIOD)
            .filter(|_| p.nt_decision(NT_SENTINEL / 2, 1))
            .count();
        assert_eq!(flips, 8, "explore must survive the sentinel");
    }

    #[test]
    fn converged_pair_donates_nt_verdict_to_its_socket_cell() {
        let t = RtTuner::new(8);
        // Ranks 0..4 on socket 0, 4..8 on socket 1.
        for r in 0..8 {
            t.set_rank_socket(r, r / 4);
        }
        let llc = 8 << 20;
        // A fresh cross-socket pair knows nothing: the LLC prior stands.
        assert_eq!(t.pair(0, 4).nt_threshold(llc), llc);
        feed_nt(&t.pair(0, 4), 500, 1000, 250);
        let learned = t.pair(0, 4).nt_min();
        assert!(learned != 0, "crossover must publish");
        assert_eq!(t.socket_nt_cell(0, 1).threshold(), learned);
        assert!(t.socket_nt_cell(0, 1).donors() > 0);
        // A *different* pair crossing the same socket pair starts from
        // the donated verdict, not the LLC prior...
        assert_eq!(t.pair(1, 5).nt_threshold(llc), learned);
        assert_eq!(t.pair(1, 5).nt_min(), 0, "prior is read, not copied");
        // ...while pairs on other socket pairs are unaffected.
        assert_eq!(t.pair(0, 1).nt_threshold(llc), llc);
        assert_eq!(t.pair(4, 0).nt_threshold(llc), llc);
    }

    #[test]
    fn own_learned_nt_threshold_overrides_socket_prior() {
        let t = RtTuner::new(4);
        // All ranks on socket 0 (the default map).
        feed_nt(&t.pair(0, 1), 500, 1000, 250);
        let donated = t.socket_nt_cell(0, 0).threshold();
        assert!(donated != 0);
        // Pair (2,3) converges on a much later crossover (bigger setup
        // tax); its own verdict must win over the shared cell.
        feed_nt(&t.pair(2, 3), 500, 64_000, 250);
        let own = t.pair(2, 3).nt_min();
        assert!(own != 0 && own != donated);
        assert_eq!(t.pair(2, 3).nt_threshold(1), own);
    }

    #[test]
    fn transfer_bandwidth_is_tracked_per_class() {
        let t = RtTuner::new(2);
        // 1 MiB in 1 ms = 1000 MiB/s.
        t.record_transfer(
            0,
            1,
            &RtTransferSample {
                backend: "direct",
                offload: false,
                bytes: 1 << 20,
                nanos: 1_000_000,
            },
        );
        let (copy, offload) = t.pair(0, 1).bandwidth_mib_s();
        assert!((copy - 1000.0).abs() < 1.0, "copy bw {copy}");
        assert_eq!(offload, 0.0);
        assert_eq!(t.pair(0, 1).samples(), 1);
    }
}
