//! The real-thread transfer tuner — the rt mirror of
//! `nemesis_core::lmt::tuner`.
//!
//! The simulated tuner learns from virtual-time samples; this one
//! learns from wall-clock timings on the host machine, per directed
//! rank pair: every rendezvous completion records an
//! [`RtTransferSample`], and the double-buffer ring (when driven by the
//! `Learned` schedule) records each fully-absorbed chunk's timing. The
//! published decisions are plain atomics — a pipe reads its learned
//! chunk target with one `load` per chunk, no lock, no allocation (the
//! same hot-path contract `tests/queue_alloc.rs` enforces on the queue
//! paths).
//!
//! The two stacks deliberately share vocabulary, not code: the rt crate
//! does not depend on `nemesis-core`, so the small EWMA chunk model is
//! mirrored here in nanoseconds rather than simulated picoseconds.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Which chunk schedule the double-buffer ring pipelines with — the rt
/// mirror of `nemesis_core::ChunkScheduleSelect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RtChunkScheduleSelect {
    /// Geometric growth from the start chunk to the slot capacity.
    #[default]
    Adaptive,
    /// Constant full-slot chunks (the seed's fixed chunking).
    Fixed,
    /// Geometric growth toward the per-pair sweet spot learned from
    /// observed per-chunk times.
    Learned,
}

/// One completed rendezvous transfer, as observed by the receiver.
#[derive(Debug, Clone, Copy)]
pub struct RtTransferSample {
    /// Backend label (`RtLmtBackend::name`).
    pub backend: &'static str,
    /// Whether the copy ran off-CPU (the offload engine).
    pub offload: bool,
    /// Payload length in bytes.
    pub bytes: usize,
    /// Wall-clock receive time in nanoseconds.
    pub nanos: u64,
}

/// Chunk classes cover 2^9 (512 B) .. 2^(9+NCLASSES-1) = 1 MiB.
const CLASS_BASE: u32 = 9;
const NCLASSES: usize = 12;
const MIN_SAMPLES: u32 = 3;
const ALPHA: f64 = 0.25;
const HYSTERESIS: f64 = 1.05;

fn class_of(bytes: usize) -> usize {
    let lg = if bytes == 0 { 0 } else { bytes.ilog2() };
    (lg.saturating_sub(CLASS_BASE) as usize).min(NCLASSES - 1)
}

#[derive(Debug, Default, Clone, Copy)]
struct Cell {
    /// EWMA throughput in bytes per nanosecond.
    bw: f64,
    n: u32,
}

#[derive(Debug, Default)]
struct ChunkModel {
    cells: [Cell; NCLASSES],
    published: Option<usize>,
}

impl ChunkModel {
    fn observe(&mut self, bytes: usize, nanos: u64) -> Option<usize> {
        let c = class_of(bytes);
        let bw = bytes as f64 / nanos as f64;
        let cell = &mut self.cells[c];
        cell.bw = if cell.n == 0 {
            bw
        } else {
            ALPHA * bw + (1.0 - ALPHA) * cell.bw
        };
        cell.n += 1;
        let best = (0..NCLASSES)
            .filter(|&i| self.cells[i].n >= MIN_SAMPLES)
            .max_by(|&a, &b| self.cells[a].bw.total_cmp(&self.cells[b].bw))?;
        let unseat = match self.published {
            None => true,
            Some(inc) => self.cells[best].bw > self.cells[inc].bw * HYSTERESIS,
        };
        if unseat {
            self.published = Some(best);
        }
        self.published.map(|c| 1usize << (CLASS_BASE + c as u32))
    }
}

/// Learned state of one directed rank pair. The chunk target is the
/// hot-path read; the models behind it update under a small mutex at
/// recording time only.
#[derive(Debug)]
pub struct RtPairTune {
    /// Published chunk sweet spot in bytes (0 = nothing learned).
    target: AtomicUsize,
    /// Transfer samples accepted (diagnostics).
    samples: AtomicU64,
    /// EWMA transfer bandwidths in MiB/s ×1000 (fixed point), copy and
    /// offload — report context.
    copy_bw: AtomicU64,
    offload_bw: AtomicU64,
    chunk_model: Mutex<ChunkModel>,
}

impl RtPairTune {
    fn new() -> Self {
        Self {
            target: AtomicUsize::new(0),
            samples: AtomicU64::new(0),
            copy_bw: AtomicU64::new(0),
            offload_bw: AtomicU64::new(0),
            chunk_model: Mutex::new(ChunkModel::default()),
        }
    }

    /// The published chunk sweet spot (0 = none yet). One atomic load —
    /// safe on the per-chunk path.
    pub fn target(&self) -> usize {
        self.target.load(Ordering::Relaxed)
    }

    /// Fold one fully-absorbed chunk's wall-clock timing into the model
    /// and republish the sweet spot.
    pub fn record_chunk(&self, bytes: usize, nanos: u64) {
        if bytes == 0 || nanos == 0 {
            return;
        }
        if let Some(t) = self.chunk_model.lock().observe(bytes, nanos) {
            self.target.store(t, Ordering::Relaxed);
        }
    }

    fn record_transfer(&self, s: &RtTransferSample) {
        if s.bytes == 0 || s.nanos == 0 {
            return;
        }
        self.samples.fetch_add(1, Ordering::Relaxed);
        let mib_s_x1000 =
            (s.bytes as f64 / (1 << 20) as f64 / (s.nanos as f64 * 1e-9) * 1000.0) as u64;
        let slot = if s.offload {
            &self.offload_bw
        } else {
            &self.copy_bw
        };
        let prev = slot.load(Ordering::Relaxed);
        let next = if prev == 0 {
            mib_s_x1000
        } else {
            (mib_s_x1000 + 3 * prev) / 4
        };
        slot.store(next, Ordering::Relaxed);
    }

    /// EWMA transfer bandwidth in MiB/s for the copy / offload classes
    /// (0.0 = unsampled).
    pub fn bandwidth_mib_s(&self) -> (f64, f64) {
        (
            self.copy_bw.load(Ordering::Relaxed) as f64 / 1000.0,
            self.offload_bw.load(Ordering::Relaxed) as f64 / 1000.0,
        )
    }

    /// Transfer samples accepted.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }
}

/// The per-run tuner: one [`RtPairTune`] per directed rank pair.
#[derive(Debug)]
pub struct RtTuner {
    pairs: Vec<Arc<RtPairTune>>,
    n: usize,
}

impl RtTuner {
    pub fn new(nranks: usize) -> Arc<Self> {
        Arc::new(Self {
            pairs: (0..nranks * nranks)
                .map(|_| Arc::new(RtPairTune::new()))
                .collect(),
            n: nranks,
        })
    }

    /// The directed pair's learned state (shared with the pipes that
    /// feed and consult it).
    pub fn pair(&self, src: usize, dst: usize) -> &Arc<RtPairTune> {
        &self.pairs[src * self.n + dst]
    }

    /// Record one completed rendezvous transfer.
    pub fn record_transfer(&self, src: usize, dst: usize, s: &RtTransferSample) {
        self.pair(src, dst).record_transfer(s);
    }

    /// The directed pair's learned chunk sweet spot, if any.
    pub fn learned_chunk(&self, src: usize, dst: usize) -> Option<usize> {
        match self.pair(src, dst).target() {
            0 => None,
            t => Some(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_model_elects_best_class_with_hysteresis() {
        let p = RtPairTune::new();
        for _ in 0..5 {
            p.record_chunk(4 << 10, 4 * (4 << 10) as u64);
            p.record_chunk(32 << 10, 2 * (32 << 10) as u64);
            p.record_chunk(256 << 10, 3 * (256 << 10) as u64);
        }
        assert_eq!(p.target(), 32 << 10);
        // A sub-hysteresis challenger cannot unseat the incumbent.
        for _ in 0..50 {
            p.record_chunk(256 << 10, (2.0 * 0.99 * (256 << 10) as f64) as u64);
        }
        assert_eq!(p.target(), 32 << 10);
    }

    #[test]
    fn degenerate_chunks_and_samples_are_discarded() {
        let t = RtTuner::new(2);
        t.pair(0, 1).record_chunk(0, 100);
        t.pair(0, 1).record_chunk(100, 0);
        t.record_transfer(
            0,
            1,
            &RtTransferSample {
                backend: "direct",
                offload: false,
                bytes: 0,
                nanos: 5,
            },
        );
        assert_eq!(t.learned_chunk(0, 1), None);
        assert_eq!(t.pair(0, 1).samples(), 0);
    }

    #[test]
    fn transfer_bandwidth_is_tracked_per_class() {
        let t = RtTuner::new(2);
        // 1 MiB in 1 ms = 1000 MiB/s.
        t.record_transfer(
            0,
            1,
            &RtTransferSample {
                backend: "direct",
                offload: false,
                bytes: 1 << 20,
                nanos: 1_000_000,
            },
        );
        let (copy, offload) = t.pair(0, 1).bandwidth_mib_s();
        assert!((copy - 1000.0).abs() < 1.0, "copy bw {copy}");
        assert_eq!(offload, 0.0);
        assert_eq!(t.pair(0, 1).samples(), 1);
    }
}
