//! The real-thread transfer tuner — the rt mirror of
//! `nemesis_core::lmt::tuner`.
//!
//! The simulated tuner learns from virtual-time samples; this one
//! learns from wall-clock timings on the host machine, per directed
//! rank pair: every rendezvous completion records an
//! [`RtTransferSample`], and the double-buffer ring (when driven by the
//! `Learned` schedule) records each fully-absorbed chunk's timing. The
//! published decisions are plain atomics — a pipe reads its learned
//! chunk target with one `load` per chunk, no lock, no allocation (the
//! same hot-path contract `tests/queue_alloc.rs` enforces on the queue
//! paths).
//!
//! The two stacks deliberately share vocabulary, not code: the rt crate
//! does not depend on `nemesis-core`, so the small EWMA chunk model is
//! mirrored here in nanoseconds rather than simulated picoseconds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

/// Which chunk schedule the double-buffer ring pipelines with — the rt
/// mirror of `nemesis_core::ChunkScheduleSelect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RtChunkScheduleSelect {
    /// Geometric growth from the start chunk to the slot capacity.
    #[default]
    Adaptive,
    /// Constant full-slot chunks (the seed's fixed chunking).
    Fixed,
    /// Geometric growth toward the per-pair sweet spot learned from
    /// observed per-chunk times.
    Learned,
}

/// One completed rendezvous transfer, as observed by the receiver.
#[derive(Debug, Clone, Copy)]
pub struct RtTransferSample {
    /// Backend label (`RtLmtBackend::name`).
    pub backend: &'static str,
    /// Whether the copy ran off-CPU (the offload engine).
    pub offload: bool,
    /// Payload length in bytes.
    pub bytes: usize,
    /// Wall-clock receive time in nanoseconds.
    pub nanos: u64,
}

/// Chunk classes cover 2^9 (512 B) .. 2^(9+NCLASSES-1) = 1 MiB.
const CLASS_BASE: u32 = 9;
const NCLASSES: usize = 12;
const MIN_SAMPLES: u32 = 3;
const ALPHA: f64 = 0.25;
const HYSTERESIS: f64 = 1.05;

fn class_of(bytes: usize) -> usize {
    let lg = if bytes == 0 { 0 } else { bytes.ilog2() };
    (lg.saturating_sub(CLASS_BASE) as usize).min(NCLASSES - 1)
}

#[derive(Debug, Default, Clone, Copy)]
struct Cell {
    /// EWMA throughput in bytes per nanosecond.
    bw: f64,
    n: u32,
}

#[derive(Debug, Default)]
struct ChunkModel {
    cells: [Cell; NCLASSES],
    published: Option<usize>,
}

impl ChunkModel {
    fn observe(&mut self, bytes: usize, nanos: u64) -> Option<usize> {
        let c = class_of(bytes);
        let bw = bytes as f64 / nanos as f64;
        let cell = &mut self.cells[c];
        cell.bw = if cell.n == 0 {
            bw
        } else {
            ALPHA * bw + (1.0 - ALPHA) * cell.bw
        };
        cell.n += 1;
        let best = (0..NCLASSES)
            .filter(|&i| self.cells[i].n >= MIN_SAMPLES)
            .max_by(|&a, &b| self.cells[a].bw.total_cmp(&self.cells[b].bw))?;
        let unseat = match self.published {
            None => true,
            Some(inc) => self.cells[best].bw > self.cells[inc].bw * HYSTERESIS,
        };
        if unseat {
            self.published = Some(best);
        }
        self.published.map(|c| 1usize << (CLASS_BASE + c as u32))
    }
}

/// Learned state of one directed rank pair. The chunk target is the
/// hot-path read; the models behind it update under a small mutex at
/// recording time only.
#[derive(Debug)]
pub struct RtPairTune {
    /// Published chunk sweet spot in bytes (0 = nothing learned).
    target: AtomicUsize,
    /// Transfer samples accepted (diagnostics).
    samples: AtomicU64,
    /// EWMA transfer bandwidths in MiB/s ×1000 (fixed point), copy and
    /// offload — report context.
    copy_bw: AtomicU64,
    offload_bw: AtomicU64,
    chunk_model: Mutex<ChunkModel>,
}

impl RtPairTune {
    fn new() -> Self {
        Self {
            target: AtomicUsize::new(0),
            samples: AtomicU64::new(0),
            copy_bw: AtomicU64::new(0),
            offload_bw: AtomicU64::new(0),
            chunk_model: Mutex::new(ChunkModel::default()),
        }
    }

    /// The published chunk sweet spot (0 = none yet). One atomic load —
    /// safe on the per-chunk path.
    pub fn target(&self) -> usize {
        self.target.load(Ordering::Relaxed)
    }

    /// Fold one fully-absorbed chunk's wall-clock timing into the model
    /// and republish the sweet spot.
    pub fn record_chunk(&self, bytes: usize, nanos: u64) {
        if bytes == 0 || nanos == 0 {
            return;
        }
        if let Some(t) = self.chunk_model.lock().observe(bytes, nanos) {
            self.target.store(t, Ordering::Relaxed);
        }
    }

    fn record_transfer(&self, s: &RtTransferSample) {
        if s.bytes == 0 || s.nanos == 0 {
            return;
        }
        self.samples.fetch_add(1, Ordering::Relaxed);
        let mib_s_x1000 =
            (s.bytes as f64 / (1 << 20) as f64 / (s.nanos as f64 * 1e-9) * 1000.0) as u64;
        let slot = if s.offload {
            &self.offload_bw
        } else {
            &self.copy_bw
        };
        let prev = slot.load(Ordering::Relaxed);
        let next = if prev == 0 {
            mib_s_x1000
        } else {
            (mib_s_x1000 + 3 * prev) / 4
        };
        slot.store(next, Ordering::Relaxed);
    }

    /// EWMA transfer bandwidth in MiB/s for the copy / offload classes
    /// (0.0 = unsampled).
    pub fn bandwidth_mib_s(&self) -> (f64, f64) {
        (
            self.copy_bw.load(Ordering::Relaxed) as f64 / 1000.0,
            self.offload_bw.load(Ordering::Relaxed) as f64 / 1000.0,
        )
    }

    /// Transfer samples accepted.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }
}

/// Arms of the real-thread backend selector, in probe order — the rt
/// mirror of `nemesis_core::lmt::tuner::selector::ARMS` over the rt
/// mechanism families (no pipe variants on the host stack; `Striped(1)`
/// is CMA with extra bookkeeping and therefore not an arm).
pub const RT_SELECTOR_ARMS: usize = 7;

/// Selector size classes cover 2^14 (16 KiB, just below the rt
/// eager/rendezvous switchover) .. 2^(14+7) = 2 MiB+.
const SEL_CLASS_BASE: u32 = 14;
const SEL_NCLASSES: usize = 8;
const SEL_MIN_PROBE: u32 = 2;
const SEL_PROBE_START: u64 = 16;
const SEL_PROBE_CAP: u64 = 1024;

fn sel_class_of(bytes: usize) -> usize {
    let lg = if bytes == 0 { 0 } else { bytes.ilog2() };
    (lg.saturating_sub(SEL_CLASS_BASE) as usize).min(SEL_NCLASSES - 1)
}

#[derive(Debug, Default, Clone, Copy)]
struct SelCell {
    /// EWMA throughput in bytes per nanosecond.
    bw: f64,
    n: u32,
    picked: u32,
}

#[derive(Debug, Clone, Copy)]
struct SelClass {
    cells: [SelCell; RT_SELECTOR_ARMS],
    tick: u64,
    next_probe: u64,
    probe_interval: u64,
    probe_cursor: usize,
    /// Remaining repeats of the current probe (streaks of two — the
    /// second sample measures the mechanism warm).
    probe_streak: u8,
    incumbent: usize,
}

impl Default for SelClass {
    fn default() -> Self {
        Self {
            cells: [SelCell::default(); RT_SELECTOR_ARMS],
            tick: 0,
            next_probe: 0,
            probe_interval: SEL_PROBE_START,
            probe_cursor: 0,
            probe_streak: 0,
            incumbent: usize::MAX,
        }
    }
}

/// The learned backend selector of one directed rank pair — the rt
/// mirror of the simulated stack's per-(pair, size-class) bandit:
/// sweep every arm [`SEL_MIN_PROBE`] times, then exploit the best
/// wall-clock bandwidth EWMA with exponentially-spaced minority probes.
/// Deterministic in its decision sequence (the measured rewards are
/// wall-clock, the schedule is not randomized).
#[derive(Debug, Default)]
pub struct RtPairSelector {
    classes: Mutex<[SelClass; SEL_NCLASSES]>,
}

impl RtPairSelector {
    /// Pick the arm for one `len`-byte transfer.
    pub fn pick(&self, len: usize) -> usize {
        let mut classes = self.classes.lock();
        let s = &mut classes[sel_class_of(len)];
        s.tick += 1;
        // Depth-first sweep: back-to-back probes per arm, so the second
        // sample measures the mechanism warm (the provisional first
        // eats the cold-start; see the core selector for the
        // rationale).
        if let Some(arm) = (0..RT_SELECTOR_ARMS)
            .find(|&a| s.cells[a].n < SEL_MIN_PROBE && s.cells[a].picked < 2 * SEL_MIN_PROBE)
        {
            s.cells[arm].picked += 1;
            return arm;
        }
        if s.probe_streak > 0 {
            s.probe_streak -= 1;
            s.cells[s.probe_cursor].picked += 1;
            return s.probe_cursor;
        }
        if s.next_probe == 0 {
            s.next_probe = s.tick + s.probe_interval;
        } else if s.tick >= s.next_probe {
            s.probe_interval = (s.probe_interval * 2).min(SEL_PROBE_CAP);
            s.next_probe = s.tick + s.probe_interval;
            s.probe_cursor = (s.probe_cursor + 1) % RT_SELECTOR_ARMS;
            s.probe_streak = 1;
            s.cells[s.probe_cursor].picked += 1;
            return s.probe_cursor;
        }
        let best = (0..RT_SELECTOR_ARMS)
            .max_by(|&a, &b| s.cells[a].bw.total_cmp(&s.cells[b].bw))
            .unwrap_or(0);
        let inc = s.incumbent;
        if inc >= RT_SELECTOR_ARMS || s.cells[best].bw > s.cells[inc].bw * HYSTERESIS {
            s.incumbent = best;
        }
        s.cells[s.incumbent].picked += 1;
        s.incumbent
    }

    /// Fold one completed transfer's wall-clock bandwidth into the
    /// arm's cell. The first sample per arm is provisional — fully
    /// replaced by the second — because a mechanism's first use pays
    /// cold-start costs (thread wakeup, ring creation, cache state)
    /// that would otherwise dominate the EWMA and mis-rank the arm.
    pub fn observe(&self, arm: usize, bytes: usize, nanos: u64) {
        if arm >= RT_SELECTOR_ARMS || bytes == 0 || nanos == 0 {
            return;
        }
        let mut classes = self.classes.lock();
        let cell = &mut classes[sel_class_of(bytes)].cells[arm];
        let bw = bytes as f64 / nanos as f64;
        cell.bw = if cell.n <= 1 {
            bw
        } else {
            ALPHA * bw + (1.0 - ALPHA) * cell.bw
        };
        cell.n += 1;
    }

    /// The arm's `(bandwidth EWMA, samples)` in the class containing
    /// `bytes` (diagnostics and tests).
    pub fn cell(&self, bytes: usize, arm: usize) -> (f64, u32) {
        let c = self.classes.lock()[sel_class_of(bytes)].cells[arm.min(RT_SELECTOR_ARMS - 1)];
        (c.bw, c.n)
    }
}

/// The per-run tuner. Pair cells are **lazily materialized** — the map
/// starts empty whatever the rank count, and a directed pair's
/// [`RtPairTune`] is allocated on its first recorded traffic (the rt
/// mirror of the simulated tuner's sublinear state: resident cells
/// track *touched* pairs, never ranks²). Read-only queries on an
/// untouched pair answer the defaults without allocating.
#[derive(Debug)]
pub struct RtTuner {
    pairs: RwLock<HashMap<(usize, usize), Arc<RtPairTune>>>,
}

impl RtTuner {
    /// Build an empty tuner. The rank count is irrelevant to the
    /// footprint — state appears per touched pair.
    pub fn new(_nranks: usize) -> Arc<Self> {
        Arc::new(Self {
            pairs: RwLock::new(HashMap::new()),
        })
    }

    /// The directed pair's learned state, materializing its cell on
    /// first touch (shared with the pipes that feed and consult it).
    /// The hot path is a read-lock plus an `Arc` clone; the write lock
    /// is taken once per pair lifetime.
    pub fn pair(&self, src: usize, dst: usize) -> Arc<RtPairTune> {
        if let Some(p) = self.pairs.read().get(&(src, dst)) {
            return Arc::clone(p);
        }
        let mut w = self.pairs.write();
        Arc::clone(
            w.entry((src, dst))
                .or_insert_with(|| Arc::new(RtPairTune::new())),
        )
    }

    /// The pair's state only if traffic already materialized it —
    /// read-only queries must not grow the map.
    fn try_pair(&self, src: usize, dst: usize) -> Option<Arc<RtPairTune>> {
        self.pairs.read().get(&(src, dst)).map(Arc::clone)
    }

    /// Materialized pair cells (the resident-memory diagnostic).
    pub fn resident_pairs(&self) -> usize {
        self.pairs.read().len()
    }

    /// Record one completed rendezvous transfer.
    pub fn record_transfer(&self, src: usize, dst: usize, s: &RtTransferSample) {
        self.pair(src, dst).record_transfer(s);
    }

    /// The directed pair's learned chunk sweet spot, if any.
    pub fn learned_chunk(&self, src: usize, dst: usize) -> Option<usize> {
        match self.try_pair(src, dst).map_or(0, |p| p.target()) {
            0 => None,
            t => Some(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_model_elects_best_class_with_hysteresis() {
        let p = RtPairTune::new();
        for _ in 0..5 {
            p.record_chunk(4 << 10, 4 * (4 << 10) as u64);
            p.record_chunk(32 << 10, 2 * (32 << 10) as u64);
            p.record_chunk(256 << 10, 3 * (256 << 10) as u64);
        }
        assert_eq!(p.target(), 32 << 10);
        // A sub-hysteresis challenger cannot unseat the incumbent.
        for _ in 0..50 {
            p.record_chunk(256 << 10, (2.0 * 0.99 * (256 << 10) as f64) as u64);
        }
        assert_eq!(p.target(), 32 << 10);
    }

    #[test]
    fn degenerate_chunks_and_samples_are_discarded() {
        let t = RtTuner::new(2);
        t.pair(0, 1).record_chunk(0, 100);
        t.pair(0, 1).record_chunk(100, 0);
        t.record_transfer(
            0,
            1,
            &RtTransferSample {
                backend: "direct",
                offload: false,
                bytes: 0,
                nanos: 5,
            },
        );
        assert_eq!(t.learned_chunk(0, 1), None);
        assert_eq!(t.pair(0, 1).samples(), 0);
    }

    #[test]
    fn selector_sweeps_then_converges() {
        let s = RtPairSelector::default();
        let mut seen = [0u32; RT_SELECTOR_ARMS];
        for _ in 0..RT_SELECTOR_ARMS as u32 * SEL_MIN_PROBE {
            let a = s.pick(1 << 20);
            seen[a] += 1;
            // Arm 2 is twice as fast as everyone else.
            s.observe(a, 1 << 20, if a == 2 { 500_000 } else { 1_000_000 });
        }
        assert_eq!(seen, [SEL_MIN_PROBE; RT_SELECTOR_ARMS], "sweep coverage");
        let picks: Vec<usize> = (0..100).map(|_| s.pick(1 << 20)).collect();
        let minority = picks.iter().filter(|&&a| a != 2).count();
        assert!(minority <= 4, "probes must be rare, got {minority}/100");
        assert_eq!(*picks.last().unwrap(), 2);
    }

    #[test]
    fn selector_classes_are_independent() {
        let s = RtPairSelector::default();
        for _ in 0..SEL_MIN_PROBE {
            for a in 0..RT_SELECTOR_ARMS {
                s.pick(32 << 10);
                s.pick(1 << 20);
                s.observe(a, 32 << 10, if a == 0 { 1_000 } else { 9_000 });
                s.observe(a, 1 << 20, if a == 3 { 1_000 } else { 9_000 });
            }
        }
        let small: Vec<usize> = (0..30).map(|_| s.pick(32 << 10)).collect();
        let large: Vec<usize> = (0..30).map(|_| s.pick(1 << 20)).collect();
        assert_eq!(*small.last().unwrap(), 0);
        assert_eq!(*large.last().unwrap(), 3);
    }

    #[test]
    fn pair_cells_materialize_on_traffic_not_rank_count() {
        let t = RtTuner::new(4096);
        assert_eq!(t.resident_pairs(), 0, "construction must allocate nothing");
        // Read-only queries on untouched pairs answer without allocating.
        assert_eq!(t.learned_chunk(17, 4000), None);
        assert_eq!(t.resident_pairs(), 0);
        t.record_transfer(
            3,
            9,
            &RtTransferSample {
                backend: "direct",
                offload: false,
                bytes: 1 << 20,
                nanos: 1_000_000,
            },
        );
        assert_eq!(t.resident_pairs(), 1, "one touched pair, one cell");
        assert_eq!(t.pair(3, 9).samples(), 1);
    }

    #[test]
    fn transfer_bandwidth_is_tracked_per_class() {
        let t = RtTuner::new(2);
        // 1 MiB in 1 ms = 1000 MiB/s.
        t.record_transfer(
            0,
            1,
            &RtTransferSample {
                backend: "direct",
                offload: false,
                bytes: 1 << 20,
                nanos: 1_000_000,
            },
        );
        let (copy, offload) = t.pair(0, 1).bandwidth_mib_s();
        assert!((copy - 1000.0).abs() < 1.0, "copy bw {copy}");
        assert_eq!(offload, 0.0);
        assert_eq!(t.pair(0, 1).samples(), 1);
    }
}
