//! Spin-then-yield backoff for busy-wait loops.
//!
//! Nemesis is a polling design; on dedicated cores pure spinning is
//! right. But when ranks are oversubscribed (more ranks than cores — CI
//! boxes, laptops), a spinning waiter burns its entire scheduler quantum
//! while the peer it waits for cannot run. [`Backoff`] spins with a
//! **capped exponential** schedule — step `k` busy-spins `2^k`
//! iterations for `k < spin_limit` (at most `2^spin_limit - 1` total
//! spin iterations, largest burst `2^(spin_limit-1)`), so a contended
//! waiter never commits to an unbounded burn — then escalates to
//! `yield_now` so the peer gets CPU.
//!
//! The cap is configurable: dedicated-core deployments raise it (longer
//! in-cache spins before surrendering the quantum), oversubscribed ones
//! lower it. The simulated stack exposes the same knob as
//! `NemesisConfig::backoff_spin_cap`; the `nemesis` facade crate bridges
//! it into an rt runtime config so both stacks tune from one place.

/// Default spin cap: `2^DEFAULT_SPIN_LIMIT - 1` total busy iterations
/// across the spin phase (largest single burst
/// `2^(DEFAULT_SPIN_LIMIT-1)` = 32) before yielding — ≈ a few hundred
/// ns, the scale of one cross-core cache-line bounce.
pub const DEFAULT_SPIN_LIMIT: u32 = 6;

/// Largest accepted cap (a ~2^15-iteration final burst ≈ tens of µs —
/// anything above would burn whole scheduler quanta and defeat the
/// escalation).
pub const MAX_SPIN_LIMIT: u32 = 16;

/// Capped exponential spin backoff that escalates to `yield_now`.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
    spin_limit: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::with_spin_limit(DEFAULT_SPIN_LIMIT)
    }
}

impl Backoff {
    pub fn new() -> Self {
        Self::default()
    }

    /// A backoff whose spin phase runs `spin_limit` doubling steps —
    /// `2^spin_limit - 1` busy iterations in total (limit clamped to
    /// [`MAX_SPIN_LIMIT`]) — before every further snooze yields. A limit
    /// of 0 yields immediately — the right setting for heavily
    /// oversubscribed runs.
    pub fn with_spin_limit(spin_limit: u32) -> Self {
        Self {
            step: 0,
            spin_limit: spin_limit.min(MAX_SPIN_LIMIT),
        }
    }

    /// One wait step: busy-spin an exponentially growing (but capped)
    /// number of iterations while young, yield to the OS once the wait
    /// has lasted long enough that the peer may need our core.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step < self.spin_limit {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// Whether the schedule has escalated past spinning (useful for
    /// callers that park differently once yielding starts).
    #[inline]
    pub fn is_yielding(&self) -> bool {
        self.step >= self.spin_limit
    }

    /// Restart the fast path (call after making progress).
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..20 {
            b.snooze(); // must terminate, eventually yielding
        }
        assert!(b.is_yielding());
        b.reset();
        assert!(!b.is_yielding());
        assert_eq!(b.step, 0);
    }

    #[test]
    fn zero_cap_yields_immediately() {
        let mut b = Backoff::with_spin_limit(0);
        assert!(b.is_yielding(), "no spin phase at cap 0");
        b.snooze(); // must not panic, must not spin
        assert_eq!(b.step, 0, "yielding never advances the step");
    }

    #[test]
    fn cap_is_clamped() {
        let b = Backoff::with_spin_limit(u32::MAX);
        assert_eq!(b.spin_limit, MAX_SPIN_LIMIT);
    }

    #[test]
    fn spin_iterations_are_capped() {
        // The spin phase performs at most 2^limit - 1 total iterations
        // before every subsequent snooze is a yield: just drive it far
        // past the cap and confirm the step saturates at the limit.
        let mut b = Backoff::with_spin_limit(3);
        for _ in 0..50 {
            b.snooze();
        }
        assert_eq!(b.step, 3, "step never exceeds the cap");
    }

    #[test]
    fn wait_for_flag_across_threads() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                flag.store(true, Ordering::Release);
            });
            let mut b = Backoff::new();
            while !flag.load(Ordering::Acquire) {
                b.snooze();
            }
        });
    }
}
