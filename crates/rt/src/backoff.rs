//! Spin-then-yield backoff for busy-wait loops.
//!
//! Nemesis is a polling design; on dedicated cores pure spinning is
//! right. But when ranks are oversubscribed (more ranks than cores — CI
//! boxes, laptops), a spinning waiter burns its entire scheduler quantum
//! while the peer it waits for cannot run. [`Backoff`] spins briefly for
//! the fast path, then starts yielding to the OS so the peer gets CPU.

/// Exponential spin backoff that escalates to `yield_now`.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

/// Spins before the first yield (2^SPIN_LIMIT busy iterations total).
const SPIN_LIMIT: u32 = 7;

impl Backoff {
    pub fn new() -> Self {
        Self::default()
    }

    /// One wait step: busy-spin while young, yield to the OS once the
    /// wait has lasted long enough that the peer may need our core.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// Restart the fast path (call after making progress).
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_resets() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze(); // must terminate, eventually yielding
        }
        assert!(b.step > SPIN_LIMIT);
        b.reset();
        assert_eq!(b.step, 0);
    }

    #[test]
    fn wait_for_flag_across_threads() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                flag.store(true, Ordering::Release);
            });
            let mut b = Backoff::new();
            while !flag.load(Ordering::Acquire) {
                b.snooze();
            }
        });
    }
}
