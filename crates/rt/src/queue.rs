//! The Nemesis lock-free MPSC receive queue.
//!
//! Nemesis gives every process one receive queue that any local process
//! can enqueue onto [6]. The classic implementation is an intrusive
//! Vyukov MPSC list: producers atomically `swap` the tail and link the
//! previous node; the single consumer walks `next` pointers. Enqueue is
//! wait-free (one `swap` + one `store`); dequeue is lock-free and only
//! observes a transient "empty" during the window between a producer's
//! `swap` and its `next` store — which is fine, Nemesis polls.
//!
//! The API is split: [`Sender`] is cheaply clonable (one per producer),
//! [`Receiver`] is unique and owns the consumer cursor, so single-consumer
//! discipline is enforced by the type system rather than by comments.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: Option<T>,
}

struct Shared<T> {
    /// Most recently enqueued node; producers swap this.
    tail: AtomicPtr<Node<T>>,
    /// Where the consumer cursor was parked when the `Receiver` dropped
    /// (so the final `Shared` drop can free the whole chain).
    orphan_head: AtomicPtr<Node<T>>,
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both sides are gone: free every node reachable from the parked
        // consumer cursor (which is always set by Receiver::drop).
        let mut cur = self.orphan_head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: sole owner at this point.
            let next = unsafe { (*cur).next.load(Ordering::Acquire) };
            unsafe { drop(Box::from_raw(cur)) };
            cur = next;
        }
    }
}

/// Producer handle (clone one per producing thread).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

// SAFETY: producers only touch atomics; T crosses threads.
unsafe impl<T: Send> Send for Sender<T> {}
unsafe impl<T: Send> Sync for Sender<T> {}

impl<T> Sender<T> {
    /// Enqueue from any thread. Wait-free (one swap + one store).
    pub fn enqueue(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: Some(value),
        }));
        // AcqRel: our node's initialization happens-before any consumer
        // that observes it via the predecessor's `next`.
        let prev = self.shared.tail.swap(node, Ordering::AcqRel);
        // SAFETY: `prev` is valid: nodes are only freed by the consumer
        // after their `next` is non-null, and only we write this `next`.
        unsafe {
            (*prev).next.store(node, Ordering::Release);
        }
    }
}

/// Consumer handle (exactly one exists per queue).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
    head: *mut Node<T>,
}

// SAFETY: the Receiver can move between threads; `head` is only used
// through `&mut self`.
unsafe impl<T: Send> Send for Receiver<T> {}

impl<T> Receiver<T> {
    /// Dequeue the oldest fully-published item. `None` means empty (or a
    /// producer is mid-publication — poll again).
    pub fn dequeue(&mut self) -> Option<T> {
        // SAFETY: `head` is consumer-owned and valid until we free it.
        let next = unsafe { (*self.head).next.load(Ordering::Acquire) };
        if next.is_null() {
            return None;
        }
        // SAFETY: `next` was initialized before its Release-store link.
        let value = unsafe { (*next).value.take() };
        let old = self.head;
        self.head = next;
        // `old` is unreachable by producers: its `next` is already
        // written (we just followed it), so no producer still holds it
        // as `prev`.
        unsafe { drop(Box::from_raw(old)) };
        debug_assert!(value.is_some(), "nodes past the stub carry values");
        value
    }

    /// Whether the queue currently appears empty.
    pub fn is_empty(&self) -> bool {
        // SAFETY: head valid while the Receiver lives.
        unsafe { (*self.head).next.load(Ordering::Acquire).is_null() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        // Producers may still hold `head` (or successors) as their
        // `prev`; park the cursor for the final Shared drop instead of
        // freeing here.
        self.shared.orphan_head.store(self.head, Ordering::Release);
    }
}

/// Create a new MPSC queue.
pub fn nem_queue<T>() -> (Sender<T>, Receiver<T>) {
    let stub = Box::into_raw(Box::new(Node {
        next: AtomicPtr::new(ptr::null_mut()),
        value: None,
    }));
    let shared = Arc::new(Shared {
        tail: AtomicPtr::new(stub),
        orphan_head: AtomicPtr::new(ptr::null_mut()),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared, head: stub },
    )
}

/// Convenience alias matching the paper's terminology.
pub type NemQueue<T> = (Sender<T>, Receiver<T>);

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_thread() {
        let (tx, mut rx) = nem_queue();
        assert!(rx.is_empty());
        for i in 0..100 {
            tx.enqueue(i);
        }
        assert!(!rx.is_empty());
        for i in 0..100 {
            assert_eq!(rx.dequeue(), Some(i));
        }
        assert_eq!(rx.dequeue(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn empty_dequeue_is_none_repeatedly() {
        let (tx, mut rx) = nem_queue::<String>();
        for _ in 0..5 {
            assert_eq!(rx.dequeue(), None);
        }
        tx.enqueue("x".into());
        assert_eq!(rx.dequeue().as_deref(), Some("x"));
        assert_eq!(rx.dequeue(), None);
    }

    #[test]
    fn remaining_items_freed_on_drop() {
        let probe = Arc::new(0usize);
        {
            let (tx, rx) = nem_queue();
            for i in 0..10 {
                tx.enqueue(Arc::new(i));
            }
            tx.enqueue(Arc::clone(&probe));
            drop(rx);
            // Senders can still enqueue after the receiver is gone; the
            // nodes must not leak or dangle.
            tx.enqueue(Arc::clone(&probe));
        }
        assert_eq!(Arc::strong_count(&probe), 1, "queue must free its nodes");
    }

    #[test]
    fn mpsc_stress_per_producer_fifo() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 10_000;
        let (tx, mut rx) = nem_queue::<u64>();
        std::thread::scope(|s| {
            for pid in 0..PRODUCERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        tx.enqueue(pid << 32 | i);
                    }
                });
            }
            let mut last = vec![None::<u64>; PRODUCERS as usize];
            let mut count = 0u64;
            while count < PRODUCERS * PER {
                if let Some(v) = rx.dequeue() {
                    let pid = (v >> 32) as usize;
                    let seq = v & 0xFFFF_FFFF;
                    if let Some(prev) = last[pid] {
                        assert!(seq > prev, "producer {pid} reordered");
                    }
                    last[pid] = Some(seq);
                    count += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            for pid in 0..PRODUCERS as usize {
                assert_eq!(last[pid], Some(PER - 1));
            }
        });
    }

    #[test]
    fn values_dropped_exactly_once() {
        // Dequeue half, drop the rest with the queue; every Arc clone
        // must be released exactly once.
        let probe = Arc::new(());
        {
            let (tx, mut rx) = nem_queue();
            for _ in 0..20 {
                tx.enqueue(Arc::clone(&probe));
            }
            for _ in 0..10 {
                assert!(rx.dequeue().is_some());
            }
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }
}
