//! The Nemesis lock-free MPSC receive queue.
//!
//! Nemesis gives every process one receive queue that any local process
//! can enqueue onto [6]. The classic implementation is an intrusive
//! Vyukov MPSC list: producers atomically `swap` the tail and link the
//! previous node; the single consumer walks `next` pointers. This
//! version keeps that algorithm but removes the per-message heap
//! allocation the seed paid on every enqueue: nodes are
//! `#[repr(align(64))]` cells in a pre-allocated slab, recycled through
//! a generation-tagged [`FreeStack`](crate::cellpool::FreeStack), and
//! linked by *index* instead of pointer. One cell = one cache line (plus
//! payload lines for large `T`), so an enqueue touches exactly the lines
//! the paper's §2 queue-cost analysis counts: the cell and the shared
//! tail word.
//!
//! * Publication is wait-free (one `swap` + one `store`); cell
//!   acquisition is a lock-free pop from the recycled-cell stack.
//! * The queue is **bounded** by its cell capacity: `enqueue` backs off
//!   (spin-then-yield) while every cell is in flight, `try_enqueue`
//!   reports exhaustion to the caller as a typed [`QueueFull`] error
//!   carrying the rejected value.
//! * The consumer can drain in batches: [`Receiver::dequeue_batch`]
//!   takes up to `n` published cells and returns them to the free stack
//!   with a single CAS (`push_chain`) — mirroring the simulated stack's
//!   single control-line charge per batched dequeue.
//!
//! The API is split: [`Sender`] is cheaply clonable (one per producer),
//! [`Receiver`] is unique and owns the consumer cursor, so single-consumer
//! discipline is enforced by the type system rather than by comments.
//!
//! **Scale-out note.** The consumer needs no doorbell bitmap, however
//! many producers exist: all producers fan into the *one* fused MPSC
//! list, so an idle poll reads exactly one shared word (`tail`) — the
//! queue's own tail pointer plays the role the core engine's
//! doorbell word plays over its shared envelope queue. Per-poll cost
//! is flat in the rank count by construction; what scales with peers
//! on the rt stack is matching state, which `RtComm` shards by source
//! (see `comm::UnexpectedSet`) the way the core engine shards its
//! posted set and rendezvous ops.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::backoff::Backoff;
use crate::cellpool::FreeStack;

const NIL: u32 = u32::MAX;

/// Typed exhaustion error from [`Sender::try_enqueue`]: every cell is
/// in flight, and the rejected value is handed back to the caller. The
/// queue itself never closes (the slab owns the cells, so senders stay
/// valid after the receiver drops); the dedicated type keeps "full"
/// distinguishable from any future closed/disconnected condition.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueFull<T>(pub T);

impl<T> std::fmt::Display for QueueFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("queue full: every cell is in flight")
    }
}

/// Default cell capacity of [`nem_queue`] (messages in flight).
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// How many freed cells `dequeue_batch` accumulates before recycling
/// them with one `push_chain` CAS.
const RECYCLE_BATCH: usize = 32;

/// One queue cell: a cache-line-aligned slab slot. `next` doubles as the
/// Vyukov list link while the cell is queued; the free stack keeps its
/// own links, so the two roles never alias.
#[repr(align(64))]
struct Cell<T> {
    next: AtomicU32,
    value: UnsafeCell<Option<T>>,
}

struct Shared<T> {
    /// The pre-allocated cell slab; never grows, never shrinks.
    cells: Box<[Cell<T>]>,
    /// Recycled-cell stack (allocation-free enqueue).
    free: FreeStack,
    /// Index of the most recently enqueued cell; producers swap this.
    tail: AtomicU32,
    /// Backoff cap for producers blocked on an exhausted slab.
    spin_limit: u32,
}

// SAFETY: producers and the consumer hand cells off through the
// Release/Acquire edges of `tail`/`next` (publication) and the free
// stack (recycling); a cell's `value` is only ever touched by the one
// thread that currently owns it under those edges.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// Producer handle (clone one per producing thread).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue from any thread without allocating. Publication is
    /// wait-free (one swap + one store); acquiring the cell is a
    /// lock-free pop. Backs off (spin-then-yield) while the cell slab is
    /// exhausted, i.e. while `capacity` messages are already in flight.
    pub fn enqueue(&self, value: T) {
        let mut value = value;
        let mut bo = Backoff::with_spin_limit(self.shared.spin_limit);
        loop {
            match self.try_enqueue(value) {
                Ok(()) => return,
                Err(QueueFull(v)) => {
                    value = v;
                    bo.snooze();
                }
            }
        }
    }

    /// Enqueue unless every cell is in flight (bounded-queue fast
    /// check); hands the value back inside [`QueueFull`] on exhaustion.
    pub fn try_enqueue(&self, value: T) -> Result<(), QueueFull<T>> {
        let Some(idx) = self.shared.free.try_pop() else {
            return Err(QueueFull(value));
        };
        let cell = &self.shared.cells[idx];
        // We own `idx` exclusively until the Release publication below.
        cell.next.store(NIL, Ordering::Relaxed);
        // SAFETY: exclusive ownership of the popped cell; the consumer
        // only reads `value` after observing the Release link.
        unsafe { *cell.value.get() = Some(value) };
        // AcqRel: our cell's initialization happens-before any consumer
        // that observes it via the predecessor's `next`.
        let prev = self.shared.tail.swap(idx as u32, Ordering::AcqRel) as usize;
        // The predecessor is valid: cells are only recycled by the
        // consumer after their `next` is non-NIL, and only we write this
        // `next`.
        self.shared.cells[prev]
            .next
            .store(idx as u32, Ordering::Release);
        Ok(())
    }

    /// Total cells (= maximum messages in flight).
    pub fn capacity(&self) -> usize {
        self.shared.cells.len() - 1 // minus the stub
    }
}

/// Consumer handle (exactly one exists per queue).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
    /// Consumer cursor: the current stub cell's index.
    head: u32,
}

// SAFETY: the Receiver can move between threads; `head` is only used
// through `&mut self`.
unsafe impl<T: Send> Send for Receiver<T> {}

impl<T> Receiver<T> {
    /// Dequeue the oldest fully-published item. `None` means empty (or a
    /// producer is mid-publication — poll again).
    pub fn dequeue(&mut self) -> Option<T> {
        let (value, freed) = self.pop_one()?;
        self.shared.free.push(freed);
        Some(value)
    }

    /// Drain up to `max` published items into `sink`, recycling the
    /// freed cells in chunks with a single CAS each — the batched
    /// consumer path. Returns how many items were delivered.
    pub fn dequeue_batch(&mut self, max: usize, mut sink: impl FnMut(T)) -> usize {
        let mut taken = 0;
        while taken < max {
            let mut freed = [0usize; RECYCLE_BATCH];
            let mut nf = 0;
            while taken < max && nf < RECYCLE_BATCH {
                let Some((value, idx)) = self.pop_one() else {
                    break;
                };
                freed[nf] = idx;
                nf += 1;
                taken += 1;
                sink(value);
            }
            if nf == 0 {
                break;
            }
            self.shared.free.push_chain(&freed[..nf]);
            if nf < RECYCLE_BATCH {
                break;
            }
        }
        taken
    }

    /// Advance the cursor by one published cell; returns the value and
    /// the now-unreachable old stub's index (for recycling).
    #[inline]
    fn pop_one(&mut self) -> Option<(T, usize)> {
        let head = self.head as usize;
        let next = self.shared.cells[head].next.load(Ordering::Acquire);
        if next == NIL {
            return None;
        }
        // SAFETY: `next` was initialized before its Release-store link.
        let value = unsafe { (*self.shared.cells[next as usize].value.get()).take() };
        let old = self.head as usize;
        self.head = next;
        // `old` is unreachable by producers: its `next` is already
        // written (we just followed it), so no producer still holds it
        // as `prev`.
        debug_assert!(value.is_some(), "cells past the stub carry values");
        Some((value?, old))
    }

    /// Whether the queue currently appears empty.
    pub fn is_empty(&self) -> bool {
        self.shared.cells[self.head as usize]
            .next
            .load(Ordering::Acquire)
            == NIL
    }

    /// Total cells (= maximum messages in flight).
    pub fn capacity(&self) -> usize {
        self.shared.cells.len() - 1
    }
}

// No Drop impls needed anywhere: the slab owns every cell, so whatever
// values are still queued when the last handle goes away are dropped
// with the `Box<[Cell<T>]>` — nothing leaks, nothing dangles.

/// Create a new MPSC queue with [`DEFAULT_QUEUE_CAPACITY`] cells.
pub fn nem_queue<T>() -> (Sender<T>, Receiver<T>) {
    nem_queue_with_capacity(DEFAULT_QUEUE_CAPACITY)
}

/// Create a new MPSC queue holding at most `capacity` in-flight
/// messages, all cell storage allocated up front.
pub fn nem_queue_with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    nem_queue_cfg(capacity, crate::backoff::DEFAULT_SPIN_LIMIT)
}

/// Fully explicit constructor: cell capacity plus the backoff spin cap
/// producers use while the slab is exhausted (see
/// [`Backoff::with_spin_limit`]).
pub fn nem_queue_cfg<T>(capacity: usize, spin_limit: u32) -> (Sender<T>, Receiver<T>) {
    assert!(capacity >= 1, "queue needs at least one cell");
    // +1: the Vyukov stub permanently occupies one cell.
    let cells: Box<[Cell<T>]> = (0..capacity + 1)
        .map(|_| Cell {
            next: AtomicU32::new(NIL),
            value: UnsafeCell::new(None),
        })
        .collect();
    let free = FreeStack::full(capacity + 1);
    let stub = free.try_pop().expect("fresh stack is non-empty") as u32;
    let shared = Arc::new(Shared {
        cells,
        free,
        tail: AtomicU32::new(stub),
        spin_limit,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared, head: stub },
    )
}

/// Convenience alias matching the paper's terminology.
pub type NemQueue<T> = (Sender<T>, Receiver<T>);

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<Cell<u64>>(), 64);
        assert!(std::mem::size_of::<Cell<u64>>() >= 64);
    }

    #[test]
    fn fifo_single_thread() {
        let (tx, mut rx) = nem_queue();
        assert!(rx.is_empty());
        for i in 0..100 {
            tx.enqueue(i);
        }
        assert!(!rx.is_empty());
        for i in 0..100 {
            assert_eq!(rx.dequeue(), Some(i));
        }
        assert_eq!(rx.dequeue(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn empty_dequeue_is_none_repeatedly() {
        let (tx, mut rx) = nem_queue::<String>();
        for _ in 0..5 {
            assert_eq!(rx.dequeue(), None);
        }
        tx.enqueue("x".into());
        assert_eq!(rx.dequeue().as_deref(), Some("x"));
        assert_eq!(rx.dequeue(), None);
    }

    #[test]
    fn bounded_capacity_try_enqueue() {
        let (tx, mut rx) = nem_queue_with_capacity::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            assert!(tx.try_enqueue(i).is_ok());
        }
        assert_eq!(tx.try_enqueue(99), Err(QueueFull(99)), "slab exhausted");
        assert_eq!(rx.dequeue(), Some(0));
        assert!(tx.try_enqueue(4).is_ok(), "recycled cell reusable");
        for expect in [1, 2, 3, 4] {
            assert_eq!(rx.dequeue(), Some(expect));
        }
    }

    #[test]
    fn dequeue_batch_drains_in_order() {
        let (tx, mut rx) = nem_queue::<u32>();
        for i in 0..100 {
            tx.enqueue(i);
        }
        let mut got = Vec::new();
        assert_eq!(rx.dequeue_batch(64, |v| got.push(v)), 64);
        assert_eq!(rx.dequeue_batch(64, |v| got.push(v)), 36);
        assert_eq!(rx.dequeue_batch(64, |_| panic!("empty")), 0);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn batch_recycles_cells() {
        let (tx, mut rx) = nem_queue_with_capacity::<u32>(8);
        for round in 0..50u32 {
            for i in 0..8 {
                tx.enqueue(round * 8 + i);
            }
            let mut n = 0;
            rx.dequeue_batch(8, |_| n += 1);
            assert_eq!(n, 8, "round {round}");
        }
    }

    #[test]
    fn remaining_items_freed_on_drop() {
        let probe = Arc::new(0usize);
        {
            let (tx, rx) = nem_queue();
            for i in 0..10 {
                tx.enqueue(Arc::new(i));
            }
            tx.enqueue(Arc::clone(&probe));
            drop(rx);
            // Senders can still enqueue after the receiver is gone; the
            // cells must not leak or dangle.
            tx.enqueue(Arc::clone(&probe));
        }
        assert_eq!(Arc::strong_count(&probe), 1, "queue must free its cells");
    }

    #[test]
    fn mpsc_stress_per_producer_fifo() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 10_000;
        // Small capacity so producers hit the bounded-slab backoff path.
        let (tx, mut rx) = nem_queue_with_capacity::<u64>(64);
        std::thread::scope(|s| {
            for pid in 0..PRODUCERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        tx.enqueue(pid << 32 | i);
                    }
                });
            }
            let mut last = vec![None::<u64>; PRODUCERS as usize];
            let mut count = 0u64;
            while count < PRODUCERS * PER {
                if let Some(v) = rx.dequeue() {
                    let pid = (v >> 32) as usize;
                    let seq = v & 0xFFFF_FFFF;
                    if let Some(prev) = last[pid] {
                        assert!(seq > prev, "producer {pid} reordered");
                    }
                    last[pid] = Some(seq);
                    count += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            for pid in 0..PRODUCERS as usize {
                assert_eq!(last[pid], Some(PER - 1));
            }
        });
    }

    #[test]
    fn mpsc_stress_batched_consumer() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 10_000;
        let (tx, mut rx) = nem_queue_with_capacity::<u64>(128);
        std::thread::scope(|s| {
            for pid in 0..PRODUCERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        tx.enqueue(pid << 32 | i);
                    }
                });
            }
            let mut last = vec![None::<u64>; PRODUCERS as usize];
            let mut count = 0u64;
            while count < PRODUCERS * PER {
                let got = rx.dequeue_batch(48, |v| {
                    let pid = (v >> 32) as usize;
                    let seq = v & 0xFFFF_FFFF;
                    if let Some(prev) = last[pid] {
                        assert!(seq > prev, "producer {pid} reordered");
                    }
                    last[pid] = Some(seq);
                });
                if got == 0 {
                    std::hint::spin_loop();
                }
                count += got as u64;
            }
        });
    }

    #[test]
    fn values_dropped_exactly_once() {
        // Dequeue half, drop the rest with the queue; every Arc clone
        // must be released exactly once.
        let probe = Arc::new(());
        {
            let (tx, mut rx) = nem_queue();
            for _ in 0..20 {
                tx.enqueue(Arc::clone(&probe));
            }
            for _ in 0..10 {
                assert!(rx.dequeue().is_some());
            }
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }
}
