//! # nemesis-rt — real-thread shared-memory runtime
//!
//! The simulated stack (`nemesis-sim` / `nemesis-core`) reproduces the
//! paper's *numbers*; this crate reproduces its *data structures* with
//! real threads and real atomics, so the lock-free machinery Nemesis is
//! built on is also exercised (and benchmarked with Criterion) on the
//! host machine:
//!
//! * [`queue`] — the Nemesis lock-free MPSC queue (Vyukov-style
//!   intrusive list: multi-producer `swap` on the tail, single-consumer
//!   traversal), the structure behind every Nemesis receive queue [6].
//! * [`cellpool`] — a Treiber-stack free list of fixed-size message
//!   cells with packed ABA generation tags.
//! * [`copy`] — the three intranode copy strategies as real-memory
//!   engines: double-buffered two-copy pipelining (the default LMT),
//!   direct single-copy (what KNEM achieves via the kernel; trivial
//!   between threads because they share an address space), and offloaded
//!   copy on a dedicated engine thread with in-order completion and a
//!   trailing status write (the I/OAT model of Figure 2).
//! * [`lmt`] — the [`RtLmtBackend`] trait unifying those engines behind
//!   the same backend vocabulary the simulated stack uses
//!   (`nemesis_core::lmt::LmtBackend`), so `comm` drives transfers
//!   without naming a strategy.
//! * [`tuner`] — the wall-clock mirror of the simulated stack's learned
//!   policy state (`nemesis_core::lmt::tuner`): per-pair chunk sweet
//!   spots learned from observed per-chunk times, and per-transfer
//!   samples recorded at every rendezvous completion.

//! * [`comm`] — a miniature message-passing runtime tying the pieces
//!   together: rank-threads with MPSC receive queues, eager cells, and a
//!   selectable large-message strategy (double-buffer / direct /
//!   offload), mirroring the simulated `nemesis-core` protocol on real
//!   hardware.
//! * [`coll`] — collectives (barrier, bcast, reduce, allreduce, gather,
//!   scatter, allgather, alltoall) over [`comm`], so the paper's §4.4
//!   patterns also run on real threads. Every collective runs over an
//!   [`RtGroup`](coll::RtGroup) subcommunicator, with two algorithms
//!   per operation and a learned per-(group size, message class)
//!   algorithm choice when the tuner is attached.

pub mod backoff;
pub mod cellpool;
pub mod coll;
pub mod comm;
pub mod copy;
pub mod lmt;
pub mod queue;
pub mod tuner;

pub use backoff::Backoff;
pub use cellpool::{CellPool, FreeStack};
pub use coll::{RtCollAlg, RtGroup};
pub use comm::{run_rt, run_rt_cfg, run_rt_with, run_rt_with_cfg, RtComm, RtConfig, RtLmt};
pub use copy::{CopyEngine, DoubleBufferPipe, OffloadEngine, PipeSchedule};
pub use lmt::{backend_for, backend_for_schedule, RtLmtBackend, ALL_RT_LMTS, ALL_RT_STRIPED};
pub use queue::{NemQueue, QueueFull};
pub use tuner::{RtChunkScheduleSelect, RtCollKind, RtTransferSample, RtTuner};
