//! Collective operations over the real-thread runtime ([`RtComm`]).
//!
//! The algorithms mirror `nemesis-core::coll` so the same communication
//! patterns the paper benchmarks (§4.4) also run on real threads, and —
//! like the simulated stack — every collective here runs over a
//! **group** ([`RtGroup`]): a subcommunicator holding a world-rank
//! translation table. The classic free functions (`barrier`, `bcast`,
//! …) are retained as wrappers over a transient universe group; the
//! `*_in` variants take an explicit group and cost O(group), not
//! O(universe). Ranks outside the group return immediately.
//!
//! Every collective has **two algorithms** (arm 0 = the classic fixed
//! choice, arm 1 = an alternate with a different latency/bandwidth
//! trade-off):
//!
//! * bcast: binomial tree vs a segmented chain (segments sized to the
//!   eager cutoff so forwarding pipelines without rendezvous stalls);
//! * reduce: binomial tree vs linear fold at the root (contributions
//!   folded in ascending group-rank order, so results are pinned for
//!   non-commutative-safe operators);
//! * allgather: gather-to-root + bcast vs a neighbor ring;
//! * alltoall: shifted-ring exchange vs XOR-pairwise (power-of-two
//!   groups; the ring is reused otherwise, where the arms coincide).
//!
//! The arm is chosen per operation by [`RtComm::coll_alg`]: `Fixed`
//! pins arm 0, `Alternate` pins arm 1, and `Learned` consults the
//! collective bandit in [`RtTuner`](crate::tuner::RtTuner). On real
//! threads only the operation's root queries the bandit; the chosen arm
//! then rides a one-byte binomial broadcast to the rest of the group,
//! so concurrent groups can never disagree about which algorithm an
//! operation runs. Every member credits the arm with its own
//! whole-operation wall-clock elapsed time on completion.
//!
//! Tags: collectives use the high tag space. Each operation takes a
//! per-group sequence number at entry and derives its tags as
//! `COLL_TAG_BASE + (group id << 18) + (seq << 8) + phase`, which keeps
//! concurrent collectives on overlapping groups from cross-matching
//! while per-`(src, tag)` FIFO matching disambiguates repeats.

use std::cell::Cell;
use std::time::Instant;

use crate::comm::{RtComm, EAGER_MAX};
use crate::tuner::RtCollKind;

/// Base of the internal tag space used by collectives.
pub const COLL_TAG_BASE: i32 = 1 << 24;

/// Per-operation phase codes (disambiguated by the group sequence
/// number, so a phase only needs to be unique within one operation;
/// the barrier uses its round index `k` as the phase).
const PHASE_BCAST: i32 = 0;
const PHASE_REDUCE: i32 = 1;
const PHASE_GATHER: i32 = 2;
const PHASE_SCATTER: i32 = 3;
const PHASE_ALLGATHER: i32 = 4;
const PHASE_ALLTOALL: i32 = 5;
/// One-byte learned-arm distribution broadcast.
const PHASE_ARM: i32 = 6;

/// How each collective picks its algorithm arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RtCollAlg {
    /// Arm 0: the classic fixed algorithm.
    #[default]
    Fixed,
    /// Arm 1: the alternate algorithm (exercises the second code path).
    Alternate,
    /// Ask the tuner's collective bandit per (kind, group size,
    /// message class).
    Learned,
}

impl RtCollAlg {
    /// Read the selection from `NEMESIS_COLL_ALG` (the same knob the
    /// simulated stack honors).
    pub fn from_env() -> Self {
        match std::env::var("NEMESIS_COLL_ALG").as_deref() {
            Err(_) | Ok("") | Ok("auto") | Ok("fixed") => RtCollAlg::Fixed,
            Ok("alternate") => RtCollAlg::Alternate,
            Ok("learned") => RtCollAlg::Learned,
            Ok(other) => {
                panic!("NEMESIS_COLL_ALG={other:?}: expected fixed | alternate | learned")
            }
        }
    }
}

/// A subcommunicator: an ordered set of world ranks. Group rank `i` is
/// the rank that `ranks[i]` plays inside the group; collectives over a
/// group touch only its members.
///
/// Groups are plain per-thread values — every member thread builds its
/// own copy from the same rank list inside the `run_rt` body. The
/// 6-bit id (a hash of the member list) and the per-group operation
/// sequence number are deterministic functions of that list and the
/// call history, so all members derive identical collective tags
/// without sharing state.
#[derive(Debug)]
pub struct RtGroup {
    /// `None` = the universe 0..n (identity translation, no table).
    ranks: Option<Vec<usize>>,
    n: usize,
    id: i32,
    /// Per-group collective sequence number, taken at operation start.
    seq: Cell<i32>,
}

impl RtGroup {
    /// The universe group over world ranks `0..n`.
    pub fn universe(n: usize) -> Self {
        assert!(n > 0, "empty universe group");
        Self {
            ranks: None,
            n,
            id: 0,
            seq: Cell::new(0),
        }
    }

    /// A proper subgroup from an ordered, duplicate-free world-rank
    /// list. The id is a 6-bit FNV fold of the list (1..=63, so it can
    /// never collide with the universe's 0).
    pub fn new(ranks: &[usize]) -> Self {
        assert!(!ranks.is_empty(), "empty group");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (i, &r) in ranks.iter().enumerate() {
            assert!(
                !ranks[..i].contains(&r),
                "duplicate world rank {r} in group"
            );
            h ^= r as u64 + 1;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            n: ranks.len(),
            ranks: Some(ranks.to_vec()),
            id: ((h % 63) + 1) as i32,
            seq: Cell::new(0),
        }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The group's 6-bit tag-space id.
    pub fn id(&self) -> i32 {
        self.id
    }

    /// Whether this is the identity (universe) group.
    pub fn is_universe(&self) -> bool {
        self.ranks.is_none()
    }

    /// Group rank → world rank. Panics if `gr` is out of bounds.
    pub fn world_rank(&self, gr: usize) -> usize {
        match &self.ranks {
            None => {
                assert!(gr < self.n, "group rank {gr} out of bounds");
                gr
            }
            Some(rs) => rs[gr],
        }
    }

    /// World rank → group rank, or `None` for non-members.
    pub fn group_rank(&self, wr: usize) -> Option<usize> {
        match &self.ranks {
            None => (wr < self.n).then_some(wr),
            Some(rs) => rs.iter().position(|&r| r == wr),
        }
    }

    /// Whether the world rank is a member.
    pub fn contains(&self, wr: usize) -> bool {
        self.group_rank(wr).is_some()
    }

    /// The member list in group-rank order.
    pub fn world_ranks(&self) -> Vec<usize> {
        match &self.ranks {
            None => (0..self.n).collect(),
            Some(rs) => rs.clone(),
        }
    }

    fn next_seq(&self) -> i32 {
        let s = self.seq.get();
        self.seq.set((s + 1) & 0x3FF);
        s
    }
}

/// The tag for one phase of one collective operation on a group.
fn gtag(g: &RtGroup, seq: i32, phase: i32) -> i32 {
    COLL_TAG_BASE + ((g.id() & 0x3F) << 18) + ((seq & 0x3FF) << 8) + phase
}

/// Resolve the algorithm arm for one operation. Under `Learned`, group
/// rank `root` queries the bandit and the arm is distributed by a
/// one-byte binomial broadcast so every member runs the same algorithm.
fn pick_arm(
    comm: &mut RtComm,
    g: &RtGroup,
    kind: RtCollKind,
    bytes: usize,
    seq: i32,
    root: usize,
    gr: usize,
) -> usize {
    match comm.coll_alg() {
        RtCollAlg::Fixed => 0,
        RtCollAlg::Alternate => 1,
        RtCollAlg::Learned => {
            let mut arm = [0u8; 1];
            if gr == root {
                arm[0] = comm
                    .tuner()
                    .map(|t| t.select_coll_alg(kind, g.size(), bytes))
                    .unwrap_or(0) as u8;
            }
            if g.size() > 1 {
                let tag = gtag(g, seq, PHASE_ARM);
                bcast_binomial(comm, g, gr, root, tag, &mut arm);
            }
            (arm[0] as usize).min(crate::tuner::RT_COLL_ARMS - 1)
        }
    }
}

/// Credit the arm with this member's whole-operation elapsed time.
fn credit(
    comm: &RtComm,
    g: &RtGroup,
    kind: RtCollKind,
    msg_bytes: usize,
    arm: usize,
    moved_bytes: usize,
    start: Instant,
) {
    if comm.coll_alg() != RtCollAlg::Learned {
        return;
    }
    if let Some(t) = comm.tuner() {
        let nanos = start.elapsed().as_nanos() as u64;
        t.record_coll(kind, g.size(), msg_bytes, arm, moved_bytes, nanos);
    }
}

/// Dissemination barrier: ⌈log₂ n⌉ rounds, rank r signals r+2^k.
pub fn barrier(comm: &mut RtComm) {
    let g = RtGroup::universe(comm.size());
    barrier_in(comm, &g);
}

/// Dissemination barrier over a group; non-members return immediately.
pub fn barrier_in(comm: &mut RtComm, g: &RtGroup) {
    let Some(gr) = g.group_rank(comm.rank()) else {
        return;
    };
    let seq = g.next_seq();
    let gn = g.size();
    if gn == 1 {
        return;
    }
    let token = [0u8; 1];
    let mut buf = [0u8; 1];
    let mut k = 0;
    let mut dist = 1;
    while dist < gn {
        let dst = g.world_rank((gr + dist) % gn);
        let src = g.world_rank((gr + gn - dist) % gn);
        let tag = gtag(g, seq, k);
        // 1-byte tokens go eager, so send-before-recv cannot cycle.
        comm.send(dst, tag, &token);
        comm.recv(Some(src), Some(tag), &mut buf);
        dist <<= 1;
        k += 1;
    }
}

/// Binomial-tree forwarding of `data` from group rank `root` under one
/// tag (shared by bcast proper and the learned-arm distribution).
fn bcast_binomial(
    comm: &mut RtComm,
    g: &RtGroup,
    gr: usize,
    root: usize,
    tag: i32,
    data: &mut [u8],
) {
    let gn = g.size();
    // Rotate so the root is virtual rank 0.
    let vrank = (gr + gn - root) % gn;
    let mut mask = 1;
    // Receive phase: find our parent.
    while mask < gn {
        if vrank & mask != 0 {
            let parent = g.world_rank((vrank - mask + root) % gn);
            comm.recv(Some(parent), Some(tag), data);
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children below our lowest set bit.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < gn {
            let child = g.world_rank((vrank + mask + root) % gn);
            comm.send(child, tag, data);
        }
        mask >>= 1;
    }
}

/// Chain broadcast: the group is one line rooted at `root`, and the
/// payload moves down it in eager-sized segments so each hop forwards
/// a segment while receiving the next — dependency edges only point
/// down the chain, so blocking sends cannot cycle.
fn bcast_chain(comm: &mut RtComm, g: &RtGroup, gr: usize, root: usize, tag: i32, data: &mut [u8]) {
    let gn = g.size();
    let pos = (gr + gn - root) % gn;
    let pred = (pos > 0).then(|| g.world_rank((gr + gn - 1) % gn));
    let succ = (pos + 1 < gn).then(|| g.world_rank((gr + 1) % gn));
    let seg = EAGER_MAX.max(1);
    let mut off = 0;
    while off < data.len() {
        let l = seg.min(data.len() - off);
        if let Some(p) = pred {
            comm.recv(Some(p), Some(tag), &mut data[off..off + l]);
        }
        if let Some(s) = succ {
            comm.send(s, tag, &data[off..off + l]);
        }
        off += l;
    }
}

/// Broadcast of `data` from world rank `root`; every rank's `data`
/// holds the payload on return.
pub fn bcast(comm: &mut RtComm, root: usize, data: &mut [u8]) {
    let g = RtGroup::universe(comm.size());
    bcast_in(comm, &g, root, data);
}

/// Broadcast over a group from group rank `root`.
pub fn bcast_in(comm: &mut RtComm, g: &RtGroup, root: usize, data: &mut [u8]) {
    let Some(gr) = g.group_rank(comm.rank()) else {
        return;
    };
    assert!(root < g.size(), "bcast root out of group");
    let seq = g.next_seq();
    if g.size() == 1 || data.is_empty() {
        return;
    }
    let start = Instant::now();
    let arm = pick_arm(comm, g, RtCollKind::Bcast, data.len(), seq, root, gr);
    let tag = gtag(g, seq, PHASE_BCAST);
    if arm == 1 {
        bcast_chain(comm, g, gr, root, tag, data);
    } else {
        bcast_binomial(comm, g, gr, root, tag, data);
    }
    credit(
        comm,
        g,
        RtCollKind::Bcast,
        data.len(),
        arm,
        data.len(),
        start,
    );
}

/// Element-wise reduction operator on byte-equal-length slices.
pub trait ReduceOp: Sync {
    fn combine(&self, acc: &mut [u8], other: &[u8]);
}

/// Wrapping byte-wise sum (useful for tests; real codes reduce typed
/// lanes via [`SumU64`]).
pub struct SumU8;

impl ReduceOp for SumU8 {
    fn combine(&self, acc: &mut [u8], other: &[u8]) {
        for (a, b) in acc.iter_mut().zip(other) {
            *a = a.wrapping_add(*b);
        }
    }
}

/// Little-endian u64-lane sum (slice length must be a multiple of 8).
pub struct SumU64;

impl ReduceOp for SumU64 {
    fn combine(&self, acc: &mut [u8], other: &[u8]) {
        assert_eq!(acc.len() % 8, 0, "SumU64 needs 8-byte lanes");
        for (a, b) in acc.chunks_exact_mut(8).zip(other.chunks_exact(8)) {
            let s = u64::from_le_bytes(a.try_into().unwrap())
                .wrapping_add(u64::from_le_bytes(b.try_into().unwrap()));
            a.copy_from_slice(&s.to_le_bytes());
        }
    }
}

/// Reduce to world rank `root`: on return, `data` at the root holds
/// the reduction of every rank's input (other ranks' `data` is clobbered
/// with partial results, as in MPI's sendbuf-aliasing mode).
pub fn reduce(comm: &mut RtComm, root: usize, data: &mut [u8], op: &dyn ReduceOp) {
    let g = RtGroup::universe(comm.size());
    reduce_in(comm, &g, root, data, op);
}

/// Reduce over a group to group rank `root`.
pub fn reduce_in(comm: &mut RtComm, g: &RtGroup, root: usize, data: &mut [u8], op: &dyn ReduceOp) {
    let Some(gr) = g.group_rank(comm.rank()) else {
        return;
    };
    assert!(root < g.size(), "reduce root out of group");
    let seq = g.next_seq();
    let gn = g.size();
    if gn == 1 {
        return;
    }
    let start = Instant::now();
    let arm = pick_arm(comm, g, RtCollKind::Reduce, data.len(), seq, root, gr);
    let tag = gtag(g, seq, PHASE_REDUCE);
    if arm == 1 {
        // Linear fold at the root, contributions combined in ascending
        // group-rank order (own block folded at its own position) so
        // the operand ordering is pinned independent of tree shape.
        if gr == root {
            let mut tmp = vec![0u8; data.len()];
            let mut acc: Option<Vec<u8>> = None;
            for q in 0..gn {
                let contrib: &[u8] = if q == root {
                    data
                } else {
                    comm.recv(Some(g.world_rank(q)), Some(tag), &mut tmp);
                    &tmp
                };
                match &mut acc {
                    None => acc = Some(contrib.to_vec()),
                    Some(a) => op.combine(a, contrib),
                }
            }
            data.copy_from_slice(&acc.unwrap());
        } else {
            comm.send(g.world_rank(root), tag, data);
        }
    } else {
        let vrank = (gr + gn - root) % gn;
        let mut tmp = vec![0u8; data.len()];
        let mut mask = 1;
        while mask < gn {
            if vrank & mask != 0 {
                let parent = g.world_rank((vrank - mask + root) % gn);
                comm.send(parent, tag, data);
                break;
            }
            let peer = vrank | mask;
            if peer < gn {
                let child = g.world_rank((peer + root) % gn);
                comm.recv(Some(child), Some(tag), &mut tmp);
                op.combine(data, &tmp);
            }
            mask <<= 1;
        }
    }
    credit(
        comm,
        g,
        RtCollKind::Reduce,
        data.len(),
        arm,
        data.len(),
        start,
    );
}

/// Allreduce = reduce to 0 + bcast from 0 (the pattern MPICH2 uses for
/// large payloads when reduce-scatter does not apply).
pub fn allreduce(comm: &mut RtComm, data: &mut [u8], op: &dyn ReduceOp) {
    let g = RtGroup::universe(comm.size());
    allreduce_in(comm, &g, data, op);
}

/// Allreduce over a group.
pub fn allreduce_in(comm: &mut RtComm, g: &RtGroup, data: &mut [u8], op: &dyn ReduceOp) {
    reduce_in(comm, g, 0, data, op);
    bcast_in(comm, g, 0, data);
}

/// Linear gather: every rank's `mine` lands in `all[r*len..]` at the
/// world-rank `root`.
pub fn gather(comm: &mut RtComm, root: usize, mine: &[u8], all: Option<&mut [u8]>) {
    let g = RtGroup::universe(comm.size());
    gather_in(comm, &g, root, mine, all);
}

/// Linear gather over a group to group rank `root`; block indices are
/// group ranks.
pub fn gather_in(comm: &mut RtComm, g: &RtGroup, root: usize, mine: &[u8], all: Option<&mut [u8]>) {
    let Some(gr) = g.group_rank(comm.rank()) else {
        return;
    };
    assert!(root < g.size(), "gather root out of group");
    let seq = g.next_seq();
    let gn = g.size();
    let len = mine.len();
    let tag = gtag(g, seq, PHASE_GATHER);
    if gr == root {
        let all = all.expect("root must supply a gather buffer");
        assert!(all.len() >= gn * len, "gather buffer too small");
        all[gr * len..(gr + 1) * len].copy_from_slice(mine);
        for q in (0..gn).filter(|&q| q != root) {
            comm.recv(
                Some(g.world_rank(q)),
                Some(tag),
                &mut all[q * len..(q + 1) * len],
            );
        }
    } else {
        comm.send(g.world_rank(root), tag, mine);
    }
}

/// Linear scatter: the root's `all[r*len..]` lands in each rank's `mine`.
pub fn scatter(comm: &mut RtComm, root: usize, all: Option<&[u8]>, mine: &mut [u8]) {
    let g = RtGroup::universe(comm.size());
    scatter_in(comm, &g, root, all, mine);
}

/// Linear scatter over a group from group rank `root`; block indices
/// are group ranks.
pub fn scatter_in(
    comm: &mut RtComm,
    g: &RtGroup,
    root: usize,
    all: Option<&[u8]>,
    mine: &mut [u8],
) {
    let Some(gr) = g.group_rank(comm.rank()) else {
        return;
    };
    assert!(root < g.size(), "scatter root out of group");
    let seq = g.next_seq();
    let gn = g.size();
    let len = mine.len();
    let tag = gtag(g, seq, PHASE_SCATTER);
    if gr == root {
        let all = all.expect("root must supply a scatter buffer");
        assert!(all.len() >= gn * len, "scatter buffer too small");
        for q in (0..gn).filter(|&q| q != root) {
            comm.send(g.world_rank(q), tag, &all[q * len..(q + 1) * len]);
        }
        mine.copy_from_slice(&all[gr * len..(gr + 1) * len]);
    } else {
        comm.recv(Some(g.world_rank(root)), Some(tag), mine);
    }
}

/// Allgather: every rank's `mine` lands in everyone's `all[r*len..]`.
pub fn allgather(comm: &mut RtComm, mine: &[u8], all: &mut [u8]) {
    let g = RtGroup::universe(comm.size());
    allgather_in(comm, &g, mine, all);
}

/// Allgather over a group; block indices are group ranks.
pub fn allgather_in(comm: &mut RtComm, g: &RtGroup, mine: &[u8], all: &mut [u8]) {
    let Some(gr) = g.group_rank(comm.rank()) else {
        return;
    };
    let seq = g.next_seq();
    let gn = g.size();
    let len = mine.len();
    assert!(all.len() >= gn * len, "allgather buffer too small");
    all[gr * len..(gr + 1) * len].copy_from_slice(mine);
    if gn == 1 || len == 0 {
        return;
    }
    let start = Instant::now();
    let arm = pick_arm(comm, g, RtCollKind::Allgather, len, seq, 0, gr);
    if arm == 1 {
        // Neighbor ring: in round k every member forwards the block it
        // received last round. The last group rank receives first and
        // everyone else sends first, so the blocking-rendezvous chain
        // unwinds from the end of the ring.
        let tag = gtag(g, seq, PHASE_ALLGATHER);
        let right = g.world_rank((gr + 1) % gn);
        let left = g.world_rank((gr + gn - 1) % gn);
        for k in 0..gn - 1 {
            let sb = (gr + gn - k) % gn;
            let rb = (gr + gn - k - 1) % gn;
            if gr + 1 < gn {
                comm.send(right, tag, &all[sb * len..(sb + 1) * len]);
                comm.recv(Some(left), Some(tag), &mut all[rb * len..(rb + 1) * len]);
            } else {
                comm.recv(Some(left), Some(tag), &mut all[rb * len..(rb + 1) * len]);
                comm.send(right, tag, &all[sb * len..(sb + 1) * len]);
            }
        }
    } else {
        // Gather to group rank 0 + bcast (the nested operations take
        // their own sequence numbers and arm decisions).
        if gr == 0 {
            let (head, _) = all.split_at_mut(gn * len);
            gather_in(comm, g, 0, mine, Some(head));
        } else {
            gather_in(comm, g, 0, mine, None);
        }
        let (head, _) = all.split_at_mut(gn * len);
        bcast_in(comm, g, 0, head);
    }
    credit(comm, g, RtCollKind::Allgather, len, arm, gn * len, start);
}

/// Alltoall: `send[r*len..]` is what we send to rank r; `recv[r*len..]`
/// is what we got from rank r.
pub fn alltoall(comm: &mut RtComm, send: &[u8], recv: &mut [u8], len: usize) {
    let g = RtGroup::universe(comm.size());
    alltoall_in(comm, &g, send, recv, len);
}

/// Alltoall over a group; block indices are group ranks.
pub fn alltoall_in(comm: &mut RtComm, g: &RtGroup, send: &[u8], recv: &mut [u8], len: usize) {
    let Some(gr) = g.group_rank(comm.rank()) else {
        return;
    };
    let seq = g.next_seq();
    let gn = g.size();
    assert!(
        send.len() >= gn * len && recv.len() >= gn * len,
        "alltoall buffers too small"
    );
    recv[gr * len..(gr + 1) * len].copy_from_slice(&send[gr * len..(gr + 1) * len]);
    if gn == 1 || len == 0 {
        return;
    }
    let start = Instant::now();
    let arm = pick_arm(comm, g, RtCollKind::Alltoall, len, seq, 0, gr);
    let tag = gtag(g, seq, PHASE_ALLTOALL);
    if arm == 1 && gn.is_power_of_two() {
        // XOR pairing: in round k, group rank r exchanges with r ^ k.
        // The pairing is symmetric; the lower rank sends first.
        for k in 1..gn {
            let peer = gr ^ k;
            let pw = g.world_rank(peer);
            if gr < peer {
                comm.send(pw, tag, &send[peer * len..(peer + 1) * len]);
                comm.recv(Some(pw), Some(tag), &mut recv[peer * len..(peer + 1) * len]);
            } else {
                comm.recv(Some(pw), Some(tag), &mut recv[peer * len..(peer + 1) * len]);
                comm.send(pw, tag, &send[peer * len..(peer + 1) * len]);
            }
        }
    } else {
        // Shifted ring: in round k, send to gr+k and receive from gr-k.
        // A member sends first iff its destination does not wrap, which
        // puts both orderings in every +k cycle and keeps the blocking
        // rendezvous from cycling for any group size.
        for k in 1..gn {
            let dst_g = (gr + k) % gn;
            let src_g = (gr + gn - k) % gn;
            let dst = g.world_rank(dst_g);
            let src = g.world_rank(src_g);
            if gr + k < gn {
                comm.send(dst, tag, &send[dst_g * len..(dst_g + 1) * len]);
                comm.recv(
                    Some(src),
                    Some(tag),
                    &mut recv[src_g * len..(src_g + 1) * len],
                );
            } else {
                comm.recv(
                    Some(src),
                    Some(tag),
                    &mut recv[src_g * len..(src_g + 1) * len],
                );
                comm.send(dst, tag, &send[dst_g * len..(dst_g + 1) * len]);
            }
        }
    }
    credit(comm, g, RtCollKind::Alltoall, len, arm, gn * len, start);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{run_rt, run_rt_cfg, RtConfig, RtLmt};

    const STRATEGIES: [RtLmt; 3] = [RtLmt::DoubleBuffer, RtLmt::Direct, RtLmt::Offload];

    #[test]
    fn barrier_all_sizes() {
        for n in [1, 2, 3, 4, 8] {
            run_rt(n, RtLmt::Direct, |comm| {
                for _ in 0..3 {
                    barrier(comm);
                }
            });
        }
    }

    #[test]
    fn barrier_orders_events() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase = AtomicUsize::new(0);
        run_rt(4, RtLmt::Direct, |comm| {
            if comm.rank() == 0 {
                phase.store(1, Ordering::SeqCst);
            }
            barrier(comm);
            // Every rank must observe rank 0's pre-barrier store.
            assert_eq!(phase.load(Ordering::SeqCst), 1);
        });
    }

    #[test]
    fn bcast_small_and_large_all_roots() {
        for lmt in STRATEGIES {
            run_rt(4, lmt, |comm| {
                for root in 0..4 {
                    for len in [100usize, 200_000] {
                        let mut data = vec![0u8; len];
                        if comm.rank() == root {
                            data.iter_mut()
                                .enumerate()
                                .for_each(|(i, b)| *b = (i % 251) as u8 ^ root as u8);
                        }
                        bcast(comm, root, &mut data);
                        assert!(
                            data.iter()
                                .enumerate()
                                .all(|(i, &b)| b == (i % 251) as u8 ^ root as u8),
                            "{lmt:?} root {root} len {len}"
                        );
                        barrier(comm);
                    }
                }
            });
        }
    }

    #[test]
    fn reduce_sum_u64() {
        run_rt(4, RtLmt::Direct, |comm| {
            let me = comm.rank() as u64;
            let mut data: Vec<u8> = (0..100u64).flat_map(|i| (i + me).to_le_bytes()).collect();
            reduce(comm, 0, &mut data, &SumU64);
            if comm.rank() == 0 {
                for (i, lane) in data.chunks_exact(8).enumerate() {
                    let v = u64::from_le_bytes(lane.try_into().unwrap());
                    // sum over ranks of (i + r) = 4i + 0+1+2+3.
                    assert_eq!(v, 4 * i as u64 + 6, "lane {i}");
                }
            }
        });
    }

    #[test]
    fn allreduce_matches_reference() {
        for lmt in STRATEGIES {
            run_rt(3, lmt, |comm| {
                let me = comm.rank() as u8;
                let mut data = vec![me + 1; 64 << 10];
                allreduce(comm, &mut data, &SumU8);
                // 1 + 2 + 3 everywhere.
                assert!(data.iter().all(|&b| b == 6), "{lmt:?}");
            });
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        run_rt(4, RtLmt::Direct, |comm| {
            let me = comm.rank();
            let n = comm.size();
            let len = 10_000;
            let mine = vec![me as u8 + 1; len];
            let mut all = vec![0u8; n * len];
            if me == 0 {
                gather(comm, 0, &mine, Some(&mut all));
                for r in 0..n {
                    assert!(all[r * len..(r + 1) * len]
                        .iter()
                        .all(|&b| b == r as u8 + 1));
                }
            } else {
                gather(comm, 0, &mine, None);
            }
            // Scatter it back; every rank should get its own block.
            let mut back = vec![0u8; len];
            if me == 0 {
                scatter(comm, 0, Some(&all), &mut back);
            } else {
                scatter(comm, 0, None, &mut back);
            }
            assert!(back.iter().all(|&b| b == me as u8 + 1));
        });
    }

    #[test]
    fn allgather_all_ranks_see_everything() {
        run_rt(4, RtLmt::DoubleBuffer, |comm| {
            let me = comm.rank();
            let n = comm.size();
            let len = 50_000;
            let mine = vec![me as u8 * 3 + 1; len];
            let mut all = vec![0u8; n * len];
            allgather(comm, &mine, &mut all);
            for r in 0..n {
                assert!(
                    all[r * len..(r + 1) * len]
                        .iter()
                        .all(|&b| b == r as u8 * 3 + 1),
                    "rank {me} block {r}"
                );
            }
        });
    }

    #[test]
    fn alltoall_permutation_pow2_and_odd() {
        for lmt in STRATEGIES {
            for n in [4usize, 3] {
                run_rt(n, lmt, |comm| {
                    let me = comm.rank();
                    let n = comm.size();
                    let len = 30_000;
                    // Block for rank r encodes (me, r).
                    let mut send = vec![0u8; n * len];
                    for r in 0..n {
                        send[r * len..(r + 1) * len].fill((me * 16 + r) as u8);
                    }
                    let mut recv = vec![0u8; n * len];
                    alltoall(comm, &send, &mut recv, len);
                    for r in 0..n {
                        assert!(
                            recv[r * len..(r + 1) * len]
                                .iter()
                                .all(|&b| b == (r * 16 + me) as u8),
                            "{lmt:?} n={n}: rank {me} block from {r}"
                        );
                    }
                });
            }
        }
    }

    fn alt_cfg(alg: RtCollAlg) -> RtConfig {
        RtConfig {
            coll_alg: alg,
            ..RtConfig::default()
        }
    }

    #[test]
    fn group_translation_roundtrip() {
        let g = RtGroup::new(&[5, 2, 9]);
        assert_eq!(g.size(), 3);
        assert!(!g.is_universe());
        for gr in 0..g.size() {
            assert_eq!(g.group_rank(g.world_rank(gr)), Some(gr));
        }
        assert_eq!(g.group_rank(7), None);
        assert!(g.contains(9) && !g.contains(0));
        assert_eq!(g.world_ranks(), vec![5, 2, 9]);
        let u = RtGroup::universe(4);
        assert!(u.is_universe());
        assert_eq!(u.id(), 0);
        assert_eq!(u.group_rank(3), Some(3));
        assert_eq!(u.group_rank(4), None);
        assert_ne!(RtGroup::new(&[5, 2, 9]).id(), 0);
    }

    #[test]
    fn subgroup_collectives_skip_non_members() {
        for alg in [RtCollAlg::Fixed, RtCollAlg::Alternate, RtCollAlg::Learned] {
            run_rt_cfg(4, RtLmt::Direct, alt_cfg(alg), |comm| {
                let g = RtGroup::new(&[3, 1, 0]);
                let me = comm.rank();
                // Group-rank order is [3, 1, 0]: world 3 is group 0.
                let len = 20_000;
                let mut data = vec![0u8; len];
                if me == 3 {
                    data.fill(0xAB);
                }
                bcast_in(comm, &g, 0, &mut data);
                if g.contains(me) {
                    assert!(data.iter().all(|&b| b == 0xAB), "{alg:?} rank {me}");
                } else {
                    assert!(data.iter().all(|&b| b == 0), "{alg:?} non-member touched");
                }
                let mut all = vec![0u8; 3 * len];
                let mine = vec![me as u8 + 1; len];
                allgather_in(comm, &g, &mine, &mut all);
                if let Some(gr) = g.group_rank(me) {
                    let _ = gr;
                    for (q, &wr) in [3usize, 1, 0].iter().enumerate() {
                        assert!(
                            all[q * len..(q + 1) * len]
                                .iter()
                                .all(|&b| b == wr as u8 + 1),
                            "{alg:?} rank {me} block {q}"
                        );
                    }
                }
            });
        }
    }

    #[test]
    fn alternate_arms_match_fixed() {
        // Every collective's arm 1 must agree byte-for-byte with arm 0.
        for alg in [RtCollAlg::Alternate, RtCollAlg::Learned] {
            for n in [3usize, 4] {
                run_rt_cfg(n, RtLmt::Direct, alt_cfg(alg), |comm| {
                    let me = comm.rank();
                    let n = comm.size();
                    for len in [64usize, EAGER_MAX, EAGER_MAX + 1, 100_000] {
                        let mut data = vec![0u8; len];
                        if me == 1 {
                            data.iter_mut()
                                .enumerate()
                                .for_each(|(i, b)| *b = (i % 253) as u8);
                        }
                        bcast(comm, 1, &mut data);
                        assert!(
                            data.iter().enumerate().all(|(i, &b)| b == (i % 253) as u8),
                            "{alg:?} bcast n={n} len={len}"
                        );

                        let mut acc = vec![me as u8 + 1; len];
                        allreduce(comm, &mut acc, &SumU8);
                        let want = (1..=n as u8).sum::<u8>();
                        assert!(acc.iter().all(|&b| b == want), "{alg:?} allreduce");

                        let mine = vec![me as u8 ^ 0x5A; len];
                        let mut all = vec![0u8; n * len];
                        allgather(comm, &mine, &mut all);
                        for r in 0..n {
                            assert!(
                                all[r * len..(r + 1) * len]
                                    .iter()
                                    .all(|&b| b == r as u8 ^ 0x5A),
                                "{alg:?} allgather n={n} len={len} block {r}"
                            );
                        }

                        let mut send = vec![0u8; n * len];
                        for r in 0..n {
                            send[r * len..(r + 1) * len].fill((me * 16 + r) as u8);
                        }
                        let mut recv = vec![0u8; n * len];
                        alltoall(comm, &send, &mut recv, len);
                        for r in 0..n {
                            assert!(
                                recv[r * len..(r + 1) * len]
                                    .iter()
                                    .all(|&b| b == (r * 16 + me) as u8),
                                "{alg:?} alltoall n={n} len={len} block {r}"
                            );
                        }
                    }
                });
            }
        }
    }

    #[test]
    fn learned_mode_credits_the_bandit() {
        let tuner = crate::tuner::RtTuner::new(4);
        let cfg = RtConfig {
            tuner: Some(std::sync::Arc::clone(&tuner)),
            ..alt_cfg(RtCollAlg::Learned)
        };
        run_rt_cfg(4, RtLmt::Direct, cfg, |comm| {
            let g = RtGroup::universe(comm.size());
            let mut all = vec![0u8; 4 * 4096];
            let mine = vec![comm.rank() as u8; 4096];
            for _ in 0..8 {
                allgather_in(comm, &g, &mine, &mut all);
            }
        });
        let (bw0, n0) = tuner.coll_cell(RtCollKind::Allgather, 4, 4096, 0);
        let (bw1, n1) = tuner.coll_cell(RtCollKind::Allgather, 4, 4096, 1);
        // 8 ops × 4 members credited somewhere across the two arms.
        assert!(n0 + n1 >= 8, "arms never credited: {n0}+{n1}");
        assert!(bw0 >= 0.0 && bw1 >= 0.0);
    }
}
