//! Collective operations over the real-thread runtime ([`RtComm`]).
//!
//! The algorithms mirror `nemesis-core::coll` so the same communication
//! patterns the paper benchmarks (§4.4) also run on real threads: a
//! dissemination barrier, binomial-tree broadcast and reduce,
//! recursive-doubling allreduce/allgather, linear gather/scatter and
//! pairwise-exchange alltoall. All of them are built purely from
//! [`RtComm::send`]/[`RtComm::recv`], so every byte flows through the
//! selected [`RtLmt`](crate::comm::RtLmt) strategy.
//!
//! Tags: collectives use the high tag space (`COLL_TAG_BASE +
//! round`) so they never collide with application point-to-point tags,
//! and each rank participates in rounds in a deterministic order, which
//! keeps matching unambiguous without a communicator sequence number.

use crate::comm::RtComm;

/// Base of the internal tag space used by collectives.
pub const COLL_TAG_BASE: i32 = 1 << 24;

/// Dissemination barrier: ⌈log₂ n⌉ rounds, rank r signals r+2^k.
pub fn barrier(comm: &mut RtComm) {
    let n = comm.size();
    let me = comm.rank();
    if n == 1 {
        return;
    }
    let token = [0u8; 1];
    let mut buf = [0u8; 1];
    let mut k = 0;
    let mut dist = 1;
    while dist < n {
        let dst = (me + dist) % n;
        let src = (me + n - dist) % n;
        let tag = COLL_TAG_BASE + k;
        // Odd/even split inside each round avoids send-send cycles with
        // the synchronous rendezvous path (1-byte tokens go eager, but
        // keep the discipline uniform).
        comm.send(dst, tag, &token);
        comm.recv(Some(src), Some(tag), &mut buf);
        dist <<= 1;
        k += 1;
    }
}

/// Binomial-tree broadcast of `data` from `root`; every rank's `data`
/// holds the payload on return.
pub fn bcast(comm: &mut RtComm, root: usize, data: &mut [u8]) {
    let n = comm.size();
    let me = comm.rank();
    if n == 1 {
        return;
    }
    // Rotate so the root is virtual rank 0.
    let vrank = (me + n - root) % n;
    let mut mask = 1;
    // Receive phase: find our parent.
    while mask < n {
        if vrank & mask != 0 {
            let parent = (vrank - mask + root) % n;
            comm.recv(Some(parent), Some(COLL_TAG_BASE + 1), data);
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children below our lowest set bit.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < n {
            let child = (vrank + mask + root) % n;
            comm.send(child, COLL_TAG_BASE + 1, data);
        }
        mask >>= 1;
    }
}

/// Element-wise reduction operator on byte-equal-length slices.
pub trait ReduceOp: Sync {
    fn combine(&self, acc: &mut [u8], other: &[u8]);
}

/// Wrapping byte-wise sum (useful for tests; real codes reduce typed
/// lanes via [`SumU64`]).
pub struct SumU8;

impl ReduceOp for SumU8 {
    fn combine(&self, acc: &mut [u8], other: &[u8]) {
        for (a, b) in acc.iter_mut().zip(other) {
            *a = a.wrapping_add(*b);
        }
    }
}

/// Little-endian u64-lane sum (slice length must be a multiple of 8).
pub struct SumU64;

impl ReduceOp for SumU64 {
    fn combine(&self, acc: &mut [u8], other: &[u8]) {
        assert_eq!(acc.len() % 8, 0, "SumU64 needs 8-byte lanes");
        for (a, b) in acc.chunks_exact_mut(8).zip(other.chunks_exact(8)) {
            let s = u64::from_le_bytes(a.try_into().unwrap())
                .wrapping_add(u64::from_le_bytes(b.try_into().unwrap()));
            a.copy_from_slice(&s.to_le_bytes());
        }
    }
}

/// Binomial-tree reduce to `root`: on return, `data` at the root holds
/// the reduction of every rank's input (other ranks' `data` is clobbered
/// with partial results, as in MPI's sendbuf-aliasing mode).
pub fn reduce(comm: &mut RtComm, root: usize, data: &mut [u8], op: &dyn ReduceOp) {
    let n = comm.size();
    let me = comm.rank();
    if n == 1 {
        return;
    }
    let vrank = (me + n - root) % n;
    let mut tmp = vec![0u8; data.len()];
    let mut mask = 1;
    while mask < n {
        if vrank & mask != 0 {
            let parent = (vrank - mask + root) % n;
            comm.send(parent, COLL_TAG_BASE + 2, data);
            break;
        }
        let peer = vrank | mask;
        if peer < n {
            let child = (peer + root) % n;
            comm.recv(Some(child), Some(COLL_TAG_BASE + 2), &mut tmp);
            op.combine(data, &tmp);
        }
        mask <<= 1;
    }
}

/// Allreduce = reduce to 0 + bcast from 0 (the pattern MPICH2 uses for
/// large payloads when reduce-scatter does not apply).
pub fn allreduce(comm: &mut RtComm, data: &mut [u8], op: &dyn ReduceOp) {
    reduce(comm, 0, data, op);
    bcast(comm, 0, data);
}

/// Linear gather: every rank's `mine` lands in `all[r*len..]` at the root.
pub fn gather(comm: &mut RtComm, root: usize, mine: &[u8], all: Option<&mut [u8]>) {
    let n = comm.size();
    let me = comm.rank();
    let len = mine.len();
    if me == root {
        let all = all.expect("root must supply a gather buffer");
        assert!(all.len() >= n * len, "gather buffer too small");
        all[me * len..(me + 1) * len].copy_from_slice(mine);
        for src in (0..n).filter(|&r| r != root) {
            comm.recv(
                Some(src),
                Some(COLL_TAG_BASE + 3),
                &mut all[src * len..(src + 1) * len],
            );
        }
    } else {
        comm.send(root, COLL_TAG_BASE + 3, mine);
    }
}

/// Linear scatter: the root's `all[r*len..]` lands in each rank's `mine`.
pub fn scatter(comm: &mut RtComm, root: usize, all: Option<&[u8]>, mine: &mut [u8]) {
    let n = comm.size();
    let me = comm.rank();
    let len = mine.len();
    if me == root {
        let all = all.expect("root must supply a scatter buffer");
        assert!(all.len() >= n * len, "scatter buffer too small");
        for dst in (0..n).filter(|&r| r != root) {
            comm.send(dst, COLL_TAG_BASE + 4, &all[dst * len..(dst + 1) * len]);
        }
        mine.copy_from_slice(&all[me * len..(me + 1) * len]);
    } else {
        comm.recv(Some(root), Some(COLL_TAG_BASE + 4), mine);
    }
}

/// Allgather by gather-to-0 + bcast (simple and deadlock-free under the
/// synchronous rendezvous; ring allgather is measured separately in the
/// sim crate).
pub fn allgather(comm: &mut RtComm, mine: &[u8], all: &mut [u8]) {
    let root = 0;
    if comm.rank() == root {
        gather(comm, root, mine, Some(all));
    } else {
        gather(comm, root, mine, None);
    }
    bcast(comm, root, all);
}

/// Pairwise-exchange alltoall: in round k, rank r exchanges with r ^ k
/// (for power-of-two n) or uses the shifted ring schedule otherwise.
/// `send[r*len..]` is what we send to rank r; `recv[r*len..]` is what we
/// got from rank r.
pub fn alltoall(comm: &mut RtComm, send: &[u8], recv: &mut [u8], len: usize) {
    let n = comm.size();
    let me = comm.rank();
    assert!(
        send.len() >= n * len && recv.len() >= n * len,
        "alltoall buffers too small"
    );
    recv[me * len..(me + 1) * len].copy_from_slice(&send[me * len..(me + 1) * len]);
    if n.is_power_of_two() {
        for k in 1..n {
            let peer = me ^ k;
            let tag = COLL_TAG_BASE + 5 + k as i32;
            // XOR pairing is symmetric: lower rank sends first.
            if me < peer {
                comm.send(peer, tag, &send[peer * len..(peer + 1) * len]);
                comm.recv(
                    Some(peer),
                    Some(tag),
                    &mut recv[peer * len..(peer + 1) * len],
                );
            } else {
                let (a, b) = split_mut(recv, peer * len, len);
                comm.recv(Some(peer), Some(tag), a);
                comm.send(peer, tag, &send[peer * len..(peer + 1) * len]);
                let _ = b;
            }
        }
    } else {
        for k in 1..n {
            let dst = (me + k) % n;
            let src = (me + n - k) % n;
            let tag = COLL_TAG_BASE + 5 + k as i32;
            // Odd/even phase split breaks the ring cycle.
            if me.is_multiple_of(2) {
                comm.send(dst, tag, &send[dst * len..(dst + 1) * len]);
                comm.recv(Some(src), Some(tag), &mut recv[src * len..(src + 1) * len]);
            } else {
                let (a, _) = split_mut(recv, src * len, len);
                comm.recv(Some(src), Some(tag), a);
                comm.send(dst, tag, &send[dst * len..(dst + 1) * len]);
            }
        }
    }
}

/// Borrow `buf[at..at+len]` mutably (helper keeping the borrow checker
/// happy when receiving into a slice of a larger buffer).
fn split_mut(buf: &mut [u8], at: usize, len: usize) -> (&mut [u8], &mut [u8]) {
    let (_, rest) = buf.split_at_mut(at);
    let (mid, tail) = rest.split_at_mut(len);
    (mid, tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{run_rt, RtLmt};

    const STRATEGIES: [RtLmt; 3] = [RtLmt::DoubleBuffer, RtLmt::Direct, RtLmt::Offload];

    #[test]
    fn barrier_all_sizes() {
        for n in [1, 2, 3, 4, 8] {
            run_rt(n, RtLmt::Direct, |comm| {
                for _ in 0..3 {
                    barrier(comm);
                }
            });
        }
    }

    #[test]
    fn barrier_orders_events() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase = AtomicUsize::new(0);
        run_rt(4, RtLmt::Direct, |comm| {
            if comm.rank() == 0 {
                phase.store(1, Ordering::SeqCst);
            }
            barrier(comm);
            // Every rank must observe rank 0's pre-barrier store.
            assert_eq!(phase.load(Ordering::SeqCst), 1);
        });
    }

    #[test]
    fn bcast_small_and_large_all_roots() {
        for lmt in STRATEGIES {
            run_rt(4, lmt, |comm| {
                for root in 0..4 {
                    for len in [100usize, 200_000] {
                        let mut data = vec![0u8; len];
                        if comm.rank() == root {
                            data.iter_mut()
                                .enumerate()
                                .for_each(|(i, b)| *b = (i % 251) as u8 ^ root as u8);
                        }
                        bcast(comm, root, &mut data);
                        assert!(
                            data.iter()
                                .enumerate()
                                .all(|(i, &b)| b == (i % 251) as u8 ^ root as u8),
                            "{lmt:?} root {root} len {len}"
                        );
                        barrier(comm);
                    }
                }
            });
        }
    }

    #[test]
    fn reduce_sum_u64() {
        run_rt(4, RtLmt::Direct, |comm| {
            let me = comm.rank() as u64;
            let mut data: Vec<u8> = (0..100u64).flat_map(|i| (i + me).to_le_bytes()).collect();
            reduce(comm, 0, &mut data, &SumU64);
            if comm.rank() == 0 {
                for (i, lane) in data.chunks_exact(8).enumerate() {
                    let v = u64::from_le_bytes(lane.try_into().unwrap());
                    // sum over ranks of (i + r) = 4i + 0+1+2+3.
                    assert_eq!(v, 4 * i as u64 + 6, "lane {i}");
                }
            }
        });
    }

    #[test]
    fn allreduce_matches_reference() {
        for lmt in STRATEGIES {
            run_rt(3, lmt, |comm| {
                let me = comm.rank() as u8;
                let mut data = vec![me + 1; 64 << 10];
                allreduce(comm, &mut data, &SumU8);
                // 1 + 2 + 3 everywhere.
                assert!(data.iter().all(|&b| b == 6), "{lmt:?}");
            });
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        run_rt(4, RtLmt::Direct, |comm| {
            let me = comm.rank();
            let n = comm.size();
            let len = 10_000;
            let mine = vec![me as u8 + 1; len];
            let mut all = vec![0u8; n * len];
            if me == 0 {
                gather(comm, 0, &mine, Some(&mut all));
                for r in 0..n {
                    assert!(all[r * len..(r + 1) * len]
                        .iter()
                        .all(|&b| b == r as u8 + 1));
                }
            } else {
                gather(comm, 0, &mine, None);
            }
            // Scatter it back; every rank should get its own block.
            let mut back = vec![0u8; len];
            if me == 0 {
                scatter(comm, 0, Some(&all), &mut back);
            } else {
                scatter(comm, 0, None, &mut back);
            }
            assert!(back.iter().all(|&b| b == me as u8 + 1));
        });
    }

    #[test]
    fn allgather_all_ranks_see_everything() {
        run_rt(4, RtLmt::DoubleBuffer, |comm| {
            let me = comm.rank();
            let n = comm.size();
            let len = 50_000;
            let mine = vec![me as u8 * 3 + 1; len];
            let mut all = vec![0u8; n * len];
            allgather(comm, &mine, &mut all);
            for r in 0..n {
                assert!(
                    all[r * len..(r + 1) * len]
                        .iter()
                        .all(|&b| b == r as u8 * 3 + 1),
                    "rank {me} block {r}"
                );
            }
        });
    }

    #[test]
    fn alltoall_permutation_pow2_and_odd() {
        for lmt in STRATEGIES {
            for n in [4usize, 3] {
                run_rt(n, lmt, |comm| {
                    let me = comm.rank();
                    let n = comm.size();
                    let len = 30_000;
                    // Block for rank r encodes (me, r).
                    let mut send = vec![0u8; n * len];
                    for r in 0..n {
                        send[r * len..(r + 1) * len].fill((me * 16 + r) as u8);
                    }
                    let mut recv = vec![0u8; n * len];
                    alltoall(comm, &send, &mut recv, len);
                    for r in 0..n {
                        assert!(
                            recv[r * len..(r + 1) * len]
                                .iter()
                                .all(|&b| b == (r * 16 + me) as u8),
                            "{lmt:?} n={n}: rank {me} block from {r}"
                        );
                    }
                });
            }
        }
    }
}
