//! The real-thread LMT backend layer — the host-machine mirror of
//! `nemesis_core::lmt`.
//!
//! The simulated stack drives its four paper backends through the
//! `LmtBackend` trait; this module gives the real-thread runtime the
//! same backend vocabulary over the three host-memory copy strategies:
//!
//! | selection | backend | copies | analogue of |
//! |---|---|---|---|
//! | [`RtLmt::DoubleBuffer`] | [`DoubleBufferBackend`] | 2 | default LMT ring (§2) |
//! | [`RtLmt::Direct`] | [`DirectBackend`] | 1 | KNEM sync copy (§3.2) |
//! | [`RtLmt::Offload`] | [`OffloadBackend`] | 1, off-CPU | KNEM + I/OAT (§3.3) |
//!
//! `rt::comm` consumes only the [`RtLmtBackend`] trait: the sender
//! announces a transfer (RTS), calls
//! [`send_payload`](RtLmtBackend::send_payload), and blocks on the done
//! flag; the receiver calls
//! [`recv_payload`](RtLmtBackend::recv_payload) and then sets the flag.
//! New copy engines (e.g. a CMA-style `process_vm_readv` analogue) plug
//! in by implementing the trait.

use std::sync::Arc;

use crate::copy::{direct_copy, DoubleBufferPipe, OffloadEngine, PipeSchedule};
use crate::tuner::{RtChunkScheduleSelect, RtTuner};

/// Large-message strategy selector (the rt analogue of
/// `nemesis_core::LmtSelect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtLmt {
    /// Two copies through a per-pair double-buffered ring.
    DoubleBuffer,
    /// Single direct copy by the receiver.
    Direct,
    /// Copy offloaded to the shared engine thread.
    Offload,
    /// Single receiver-driven copy in syscall-bounded chunks — the
    /// `process_vm_readv` (CMA) analogue.
    Cma,
    /// One transfer striped across `n` rails: the receiver's CPU drives
    /// rail 0 while each further rail's stripe runs on its own engine
    /// thread, all stripes moving concurrently (mirrors
    /// `core::lmt::striped`).
    Striped(u8),
    /// Learn the backend per (pair, size-class) online: a bandit over
    /// all the other mechanisms, fed by wall-clock receive times — the
    /// rt mirror of `BackendSelect::LearnedBackend` in the simulated
    /// stack (see [`LearnedBackend`]).
    Learned,
}

/// Every non-striped selection, for parity tests and benches.
pub const ALL_RT_LMTS: [RtLmt; 4] = [
    RtLmt::DoubleBuffer,
    RtLmt::Direct,
    RtLmt::Offload,
    RtLmt::Cma,
];

/// The striped selection at every supported rail count (`Striped(1)`
/// is the degenerate stripe that must equal the plain CMA backend).
pub const ALL_RT_STRIPED: [RtLmt; 4] = [
    RtLmt::Striped(1),
    RtLmt::Striped(2),
    RtLmt::Striped(3),
    RtLmt::Striped(4),
];

/// A large-message transfer mechanism between two rank-threads.
///
/// Completion semantics shared by all backends: the sender's `send` call
/// must not return until the receiver has landed the payload (the
/// runtime's done-flag handshake), and `recv_payload` must leave `dst`
/// fully populated on return.
pub trait RtLmtBackend: Send + Sync {
    /// Diagnostic name (mirrors `LmtBackend::name`).
    fn name(&self) -> &'static str;

    /// The backend's steady-state sweet-spot chunk size in bytes
    /// (mirrors `LmtBackend::preferred_chunk`): the ceiling the adaptive
    /// pipeliner grows toward. Single-pass backends report the transfer
    /// granularity they prefer to be fed at.
    fn preferred_chunk(&self) -> usize {
        32 << 10
    }

    /// Sender-side participation in the transfer of `src` to
    /// `dst_rank`. Sender-driven backends (the ring) move bytes here;
    /// receiver-driven backends return immediately and the runtime's
    /// done flag keeps `src` alive until the receiver finishes.
    fn send_payload(&self, src_rank: usize, dst_rank: usize, src: &[u8]);

    /// Receiver side: land the announced payload into `dst`. `src` is
    /// the sender's buffer, valid for the duration of the call
    /// (receiver-driven backends copy from it; the ring ignores it).
    fn recv_payload(&self, src_rank: usize, dst_rank: usize, src: &[u8], dst: &mut [u8]);

    /// Whether the copy runs off-CPU (the offload engine) — the class
    /// of the tuner sample a completion records (mirrors
    /// `LmtRecvOp::transfer_class`).
    fn is_offload(&self) -> bool {
        false
    }
}

/// Build the backend for a selection. `nranks` sizes per-pair
/// resources.
pub fn backend_for(lmt: RtLmt, nranks: usize) -> Box<dyn RtLmtBackend> {
    backend_for_schedule(lmt, nranks, RtChunkScheduleSelect::Adaptive, None)
}

/// Build the backend for a selection under an explicit chunk schedule;
/// the learned schedule wires each ring pipe to its pair's tuner state.
pub fn backend_for_schedule(
    lmt: RtLmt,
    nranks: usize,
    schedule: RtChunkScheduleSelect,
    tuner: Option<&Arc<RtTuner>>,
) -> Box<dyn RtLmtBackend> {
    match lmt {
        RtLmt::DoubleBuffer => Box::new(DoubleBufferBackend::with_schedule(
            nranks,
            32 << 10,
            2,
            schedule,
            tuner,
        )),
        RtLmt::Direct => Box::new(DirectBackend),
        RtLmt::Offload => Box::new(OffloadBackend::new()),
        RtLmt::Cma => Box::new(CmaBackend),
        RtLmt::Striped(rails) => Box::new(StripedBackend::new(rails as usize)),
        RtLmt::Learned => Box::new(LearnedBackend::new(nranks)),
    }
}

/// Two-copy double-buffered ring per (src, dst) pair — the `default
/// LMT` analogue. Sender and receiver pipeline chunk against chunk.
pub struct DoubleBufferBackend {
    rings: Vec<DoubleBufferPipe>,
    /// Slot capacity of every ring (the adaptive schedule's ceiling,
    /// reported through [`RtLmtBackend::preferred_chunk`]).
    chunk: usize,
    n: usize,
}

impl DoubleBufferBackend {
    pub fn new(nranks: usize, chunk: usize, nbufs: usize) -> Self {
        Self::with_schedule(nranks, chunk, nbufs, RtChunkScheduleSelect::Adaptive, None)
    }

    /// Explicit chunk schedule; `Learned` requires a tuner, whose
    /// per-pair state each ring pipe then reads and feeds.
    pub fn with_schedule(
        nranks: usize,
        chunk: usize,
        nbufs: usize,
        schedule: RtChunkScheduleSelect,
        tuner: Option<&Arc<RtTuner>>,
    ) -> Self {
        let pipe_schedule = |src: usize, dst: usize| match schedule {
            RtChunkScheduleSelect::Adaptive => PipeSchedule::Geometric,
            RtChunkScheduleSelect::Fixed => PipeSchedule::Fixed,
            RtChunkScheduleSelect::Learned => match tuner {
                Some(t) => PipeSchedule::Learned(t.pair(src, dst)),
                None => PipeSchedule::Geometric,
            },
        };
        let start = match schedule {
            // Fixed = the seed's full-slot chunking.
            RtChunkScheduleSelect::Fixed => chunk,
            _ => crate::copy::ADAPTIVE_CHUNK_START.min(chunk),
        };
        Self {
            rings: (0..nranks * nranks)
                .map(|i| {
                    DoubleBufferPipe::with_schedule(
                        chunk,
                        nbufs,
                        start,
                        pipe_schedule(i / nranks, i % nranks),
                    )
                })
                .collect(),
            chunk,
            n: nranks,
        }
    }

    fn ring(&self, src: usize, dst: usize) -> &DoubleBufferPipe {
        &self.rings[src * self.n + dst]
    }
}

impl RtLmtBackend for DoubleBufferBackend {
    fn name(&self) -> &'static str {
        "double-buffer"
    }

    fn preferred_chunk(&self) -> usize {
        // The ring's actual slot capacity: the adaptive schedule inside
        // `DoubleBufferPipe` grows from one page to exactly this.
        self.chunk
    }

    fn send_payload(&self, src_rank: usize, dst_rank: usize, src: &[u8]) {
        // First copy: user buffer → ring, overlapping the receiver's
        // drain.
        self.ring(src_rank, dst_rank).send(src);
    }

    fn recv_payload(&self, src_rank: usize, dst_rank: usize, _src: &[u8], dst: &mut [u8]) {
        // Second copy: ring → user buffer.
        self.ring(src_rank, dst_rank).recv(dst);
    }
}

/// Single receiver-side copy — the KNEM analogue (threads share an
/// address space, so no kernel assist is needed).
pub struct DirectBackend;

impl RtLmtBackend for DirectBackend {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn preferred_chunk(&self) -> usize {
        // Single-pass receiver copy: no intermediate buffer to size, so
        // prefer one maximal chunk.
        1 << 20
    }

    fn send_payload(&self, _src_rank: usize, _dst_rank: usize, _src: &[u8]) {
        // Receiver-driven: nothing to do on the sending side.
    }

    fn recv_payload(&self, _src_rank: usize, _dst_rank: usize, src: &[u8], dst: &mut [u8]) {
        direct_copy(src, dst);
    }
}

/// Copy offloaded to the shared engine thread with in-order completion
/// — the I/OAT analogue (Figure 2).
pub struct OffloadBackend {
    engine: OffloadEngine,
}

impl OffloadBackend {
    pub fn new() -> Self {
        Self {
            engine: OffloadEngine::start(),
        }
    }
}

impl Default for OffloadBackend {
    fn default() -> Self {
        Self::new()
    }
}

/// Single receiver-driven copy in syscall-bounded chunks — the CMA
/// (`process_vm_readv`) analogue. Each "call" moves at most
/// [`CmaBackend::CALL_MAX`] bytes, mirroring the per-call iovec limits
/// and partial-read loop of the simulated kernel's CMA model.
pub struct CmaBackend;

impl CmaBackend {
    /// Per-call byte budget (the simulated syscall boundary).
    pub const CALL_MAX: usize = 256 << 10;
}

impl RtLmtBackend for CmaBackend {
    fn name(&self) -> &'static str {
        "cma"
    }

    fn preferred_chunk(&self) -> usize {
        Self::CALL_MAX
    }

    fn send_payload(&self, _src_rank: usize, _dst_rank: usize, _src: &[u8]) {
        // Receiver-driven: the sender only exposes its buffer (the
        // runtime's done flag keeps it alive).
    }

    fn recv_payload(&self, _src_rank: usize, _dst_rank: usize, src: &[u8], dst: &mut [u8]) {
        for (s, d) in src
            .chunks(Self::CALL_MAX)
            .zip(dst.chunks_mut(Self::CALL_MAX))
        {
            direct_copy(s, d);
        }
    }
}

/// One transfer striped across `rails` rails: stripe 0 is copied by the
/// receiving thread (the CMA analogue) while each further stripe runs
/// on its own dedicated engine thread — every stripe moves
/// concurrently, the rt mirror of `core::lmt::striped`'s CPU + DMA
/// overlap. Stripes are contiguous, page-aligned, equal-weighted
/// (wall-clock rails have no tuner EWMAs to weigh by), and the receive
/// returns only when every stripe has landed — the caller never sees a
/// partial payload.
pub struct StripedBackend {
    engines: Vec<OffloadEngine>,
    rails: usize,
}

impl StripedBackend {
    pub fn new(rails: usize) -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_rail_cap(rails, cpus)
    }

    /// `rails` rails, at most `cap` of them moving concurrently (the
    /// receiving thread plus `cap - 1` engine threads). On a host with
    /// fewer cores than rails the surplus engine threads can only
    /// timeshare the receiver's core — pure context-switch and
    /// cache-thrash tax, which is exactly why striped-2..4 *lost* to a
    /// single rail on single-core containers — so the stripes collapse
    /// onto the rails that can actually run in parallel. The backend
    /// keeps its requested identity (`name`, selector arm) either way.
    pub fn with_rail_cap(rails: usize, cap: usize) -> Self {
        let rails = rails.clamp(1, 4);
        let effective = rails.min(cap.max(1));
        Self {
            engines: (1..effective).map(|_| OffloadEngine::start()).collect(),
            rails,
        }
    }

    /// Rails that actually carry a stripe: the anchor plus one per
    /// live engine thread.
    fn effective_rails(&self) -> usize {
        self.engines.len() + 1
    }

    /// The page-aligned stripe spans for `len` bytes (rail 0 absorbs
    /// the remainder, mirroring the sim's anchor rail).
    fn spans(&self, len: usize) -> Vec<usize> {
        const PAGE: usize = 4096;
        let rails = self.effective_rails();
        let mut spans = vec![0usize; rails];
        let cap = len.saturating_sub(len.min(PAGE));
        let mut assigned = 0usize;
        for s in spans.iter_mut().skip(1) {
            let span = (len / rails / PAGE * PAGE).min(cap - assigned.min(cap));
            *s = span;
            assigned += span;
        }
        spans[0] = len - assigned;
        spans
    }
}

impl RtLmtBackend for StripedBackend {
    fn name(&self) -> &'static str {
        match self.rails {
            1 => "striped-1",
            2 => "striped-2",
            3 => "striped-3",
            _ => "striped-4",
        }
    }

    fn preferred_chunk(&self) -> usize {
        CmaBackend::CALL_MAX
    }

    fn send_payload(&self, _src_rank: usize, _dst_rank: usize, _src: &[u8]) {
        // Receiver-driven on every rail.
    }

    fn recv_payload(&self, _src_rank: usize, _dst_rank: usize, src: &[u8], dst: &mut [u8]) {
        let spans = self.spans(dst.len());
        // Carve the destination into per-rail stripes (a reborrow, so
        // `dst` is whole again once the stripe borrows end).
        let mut rest = &mut *dst;
        let mut stripes = Vec::with_capacity(spans.len());
        let mut at = 0usize;
        for &span in &spans {
            let (head, tail) = rest.split_at_mut(span);
            stripes.push((at, head));
            at += span;
            rest = tail;
        }
        // Rails 1.. run on their engines; rail 0 on this thread, all
        // concurrent. Pending handles hold the borrows until complete.
        let mut iter = stripes.into_iter();
        let (lo0, stripe0) = iter.next().expect("rails >= 1");
        let mut pending = Vec::new();
        for (engine, (lo, stripe)) in self.engines.iter().zip(iter) {
            if !stripe.is_empty() {
                let len = stripe.len();
                pending.push((lo, len, engine.submit(&src[lo..lo + len], stripe)));
            }
        }
        CmaBackend.recv_payload(0, 0, &src[lo0..lo0 + stripe0.len()], stripe0);
        let mut dead = Vec::new();
        for (lo, len, p) in pending {
            if !p.wait() {
                dead.push((lo, len));
            }
        }
        // A rail whose engine thread died never wrote its stripe: the
        // receiving thread absorbs it — the rt mirror of the sim's
        // anchor-rail takeover after a rail abort. The payload still
        // lands byte-identical, just slower.
        for (lo, len) in dead {
            direct_copy(&src[lo..lo + len], &mut dst[lo..lo + len]);
        }
    }

    fn is_offload(&self) -> bool {
        // Rails beyond the anchor move their bytes off the receiving
        // thread — only true when the parallelism cap left any engine
        // threads alive.
        !self.engines.is_empty()
    }
}

/// The learned meta-backend: one child per [`RtPairSelector`] arm, a
/// per-directed-pair selector deciding which child serves each
/// rendezvous transfer, and a per-pair choice slot carrying the
/// sender's pick to the receiver.
///
/// The sender picks (it mirrors the simulated stack, where selection
/// happens at RTS time on the sender) and publishes the arm in the
/// pair's slot; the receiver spins the slot out, drives the chosen
/// child, and feeds the measured wall-clock bandwidth back to the
/// selector. The slot is race-free because the rt rendezvous is
/// synchronous: a sender blocks until the receive lands, so at most one
/// transfer per directed pair is in flight.
pub struct LearnedBackend {
    children: [Box<dyn RtLmtBackend>; crate::tuner::RT_SELECTOR_ARMS],
    selectors: Vec<crate::tuner::RtPairSelector>,
    /// Chosen arm + 1 per directed pair; 0 = no pick published.
    slots: Vec<std::sync::atomic::AtomicUsize>,
    n: usize,
}

impl LearnedBackend {
    pub fn new(nranks: usize) -> Self {
        let n = nranks.max(1);
        Self {
            children: [
                Box::new(DoubleBufferBackend::new(n, 32 << 10, 2)),
                Box::new(DirectBackend),
                Box::new(OffloadBackend::new()),
                Box::new(CmaBackend),
                Box::new(StripedBackend::new(2)),
                Box::new(StripedBackend::new(3)),
                Box::new(StripedBackend::new(4)),
            ],
            selectors: (0..n * n)
                .map(|_| crate::tuner::RtPairSelector::default())
                .collect(),
            slots: (0..n * n)
                .map(|_| std::sync::atomic::AtomicUsize::new(0))
                .collect(),
            n,
        }
    }

    fn pair(&self, src: usize, dst: usize) -> usize {
        src * self.n + dst
    }

    /// The directed pair's selector (diagnostics and tests).
    pub fn selector(&self, src: usize, dst: usize) -> &crate::tuner::RtPairSelector {
        &self.selectors[self.pair(src, dst)]
    }
}

impl RtLmtBackend for LearnedBackend {
    fn name(&self) -> &'static str {
        "learned"
    }

    fn preferred_chunk(&self) -> usize {
        CmaBackend::CALL_MAX
    }

    fn send_payload(&self, src_rank: usize, dst_rank: usize, src: &[u8]) {
        use std::sync::atomic::Ordering;
        let pair = self.pair(src_rank, dst_rank);
        let arm = self.selectors[pair].pick(src.len());
        // Publish the pick before the child runs: a sender-driven child
        // (the ring) blocks in send until the receiver — who needs the
        // slot to know which child to drive — drains it.
        self.slots[pair].store(arm + 1, Ordering::Release);
        self.children[arm].send_payload(src_rank, dst_rank, src);
    }

    fn recv_payload(&self, src_rank: usize, dst_rank: usize, src: &[u8], dst: &mut [u8]) {
        use std::sync::atomic::Ordering;
        let pair = self.pair(src_rank, dst_rank);
        let mut bo = crate::backoff::Backoff::new();
        let arm = loop {
            match self.slots[pair].load(Ordering::Acquire) {
                0 => bo.snooze(),
                v => break v - 1,
            }
        };
        let t0 = std::time::Instant::now();
        self.children[arm].recv_payload(src_rank, dst_rank, src, dst);
        self.selectors[pair].observe(arm, dst.len(), t0.elapsed().as_nanos() as u64);
        self.slots[pair].store(0, Ordering::Release);
    }
}

impl RtLmtBackend for OffloadBackend {
    fn name(&self) -> &'static str {
        "offload-engine"
    }

    fn preferred_chunk(&self) -> usize {
        // The engine splits submissions into page descriptors (pinned
        // user memory); feeding it much more per submission only grows
        // the descriptor chain ahead of the status write.
        64 << 10
    }

    fn send_payload(&self, _src_rank: usize, _dst_rank: usize, _src: &[u8]) {
        // Receiver-driven: the receiver submits the descriptor chain.
    }

    fn recv_payload(&self, _src_rank: usize, _dst_rank: usize, src: &[u8], dst: &mut [u8]) {
        if !self.engine.submit(src, dst).wait() {
            // The engine thread died before the status write: fall back
            // to a CPU copy so the receive still completes.
            direct_copy(src, dst);
        }
    }

    fn is_offload(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_identify_backends() {
        for lmt in ALL_RT_LMTS.into_iter().chain(ALL_RT_STRIPED) {
            let b = backend_for(lmt, 2);
            assert!(!b.name().is_empty());
        }
        assert_eq!(backend_for(RtLmt::Direct, 2).name(), "direct");
        assert_eq!(backend_for(RtLmt::Cma, 2).name(), "cma");
        assert_eq!(backend_for(RtLmt::Striped(3), 2).name(), "striped-3");
    }

    #[test]
    fn striped_rails_collapse_to_available_parallelism() {
        // A 4-rail stripe on a single-core host: every engine thread
        // would timeshare the receiver's core, so the spans collapse
        // onto the anchor — while the backend keeps its identity.
        let b = StripedBackend::with_rail_cap(4, 1);
        assert_eq!(b.name(), "striped-4", "identity keeps the request");
        assert!(!b.is_offload(), "no engine threads, nothing off-CPU");
        assert_eq!(b.spans(1 << 20), vec![1 << 20]);
        // Two cores: anchor + one engine.
        let b = StripedBackend::with_rail_cap(4, 2);
        assert_eq!(b.spans(1 << 20).len(), 2);
        assert!(b.is_offload());
        // An abundant cap never lifts rails above the request.
        let b = StripedBackend::with_rail_cap(2, 16);
        assert_eq!(b.spans(1 << 20).len(), 2);
        // And whatever the collapse, payloads stay byte-identical.
        for cap in 1..=4usize {
            let b = StripedBackend::with_rail_cap(4, cap);
            let len = (1 << 20) + 123;
            let src: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut dst = vec![0u8; len];
            b.send_payload(0, 1, &src);
            b.recv_payload(0, 1, &src, &mut dst);
            assert_eq!(src, dst, "cap={cap}");
        }
    }

    #[test]
    fn striped_spans_are_page_aligned_and_cover_the_payload() {
        for rails in 1..=4usize {
            let b = StripedBackend::with_rail_cap(rails, rails);
            for len in [0usize, 1, 4095, 4096, 300 << 10, (1 << 20) + 7] {
                let spans = b.spans(len);
                assert_eq!(spans.len(), rails);
                assert_eq!(spans.iter().sum::<usize>(), len, "rails={rails} len={len}");
                for &s in &spans[1..] {
                    assert_eq!(s % 4096, 0, "non-anchor spans are page-aligned");
                }
            }
        }
    }

    #[test]
    fn striped_receives_land_byte_identical_payloads() {
        for rails in 1..=4u8 {
            let b = StripedBackend::with_rail_cap(rails as usize, rails as usize);
            for len in [1usize, 4096, (300 << 10) + 123, 1 << 20] {
                let src: Vec<u8> = (0..len).map(|i| (i % 243) as u8).collect();
                let mut dst = vec![0u8; len];
                b.send_payload(0, 1, &src);
                b.recv_payload(0, 1, &src, &mut dst);
                assert_eq!(src, dst, "rails={rails} len={len}");
            }
        }
    }

    #[test]
    fn learned_backend_delivers_and_converges_on_a_child() {
        let b = LearnedBackend::new(2);
        let len = 300 << 10;
        let src: Vec<u8> = (0..len).map(|i| (i % 239) as u8).collect();
        // Enough transfers to finish the sweep and settle on an arm.
        // Sender and receiver on separate threads: the ring child's
        // send blocks until the receiver drains it.
        std::thread::scope(|s| {
            let (b2, src2) = (&b, &src);
            s.spawn(move || {
                for _ in 0..24 {
                    b2.send_payload(0, 1, src2);
                    // The runtime's done-flag handshake keeps at most
                    // one rendezvous in flight per pair; emulate it by
                    // waiting for the receiver to consume the pick.
                    while b2.slots[b2.pair(0, 1)].load(std::sync::atomic::Ordering::Acquire) != 0 {
                        std::hint::spin_loop();
                    }
                }
            });
            for round in 0..24 {
                let mut dst = vec![0u8; len];
                b.recv_payload(0, 1, &src, &mut dst);
                assert_eq!(&src, &dst, "round {round} corrupt");
            }
        });
        // Every arm was probed at least MIN_PROBE times…
        let sel = b.selector(0, 1);
        for arm in 0..crate::tuner::RT_SELECTOR_ARMS {
            let (bw, n) = sel.cell(len, arm);
            assert!(n >= 2, "arm {arm} never probed");
            assert!(bw > 0.0);
        }
        // …and the other direction's selector is untouched.
        assert_eq!(b.selector(1, 0).cell(len, 0).1, 0);
    }

    #[test]
    fn striped_receive_survives_a_dead_engine_rail() {
        let b = StripedBackend::with_rail_cap(3, 3);
        // Kill one engine rail before the transfer: its stripe must be
        // absorbed by the receiving thread, byte-identically.
        b.engines[0].inject_failure();
        let len = (1 << 20) + 321;
        let src: Vec<u8> = (0..len).map(|i| (i % 237) as u8).collect();
        let mut dst = vec![0u8; len];
        b.send_payload(0, 1, &src);
        b.recv_payload(0, 1, &src, &mut dst);
        assert_eq!(src, dst);
        assert!(b.engines[0].poisoned());
    }

    #[test]
    fn offload_receive_survives_a_dead_engine() {
        let b = OffloadBackend::new();
        b.engine.inject_failure();
        let src: Vec<u8> = (0..100_000).map(|i| (i % 233) as u8).collect();
        let mut dst = vec![0u8; src.len()];
        b.recv_payload(0, 1, &src, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn double_buffer_reports_its_actual_slot_capacity() {
        let b = DoubleBufferBackend::new(2, 7 << 10, 2);
        assert_eq!(b.preferred_chunk(), 7 << 10);
        for lmt in ALL_RT_LMTS {
            assert!(backend_for(lmt, 2).preferred_chunk() > 0, "{lmt:?}");
        }
    }

    #[test]
    fn receiver_driven_backends_land_bytes() {
        for lmt in [RtLmt::Direct, RtLmt::Offload] {
            let b = backend_for(lmt, 2);
            let src: Vec<u8> = (0..100_000).map(|i| (i % 249) as u8).collect();
            let mut dst = vec![0u8; src.len()];
            b.send_payload(0, 1, &src);
            b.recv_payload(0, 1, &src, &mut dst);
            assert_eq!(src, dst, "{}", b.name());
        }
    }

    #[test]
    fn ring_backend_pipelines_between_threads() {
        let b = DoubleBufferBackend::new(2, 4 << 10, 2);
        let src: Vec<u8> = (0..200_000).map(|i| (i % 241) as u8).collect();
        let mut dst = vec![0u8; src.len()];
        std::thread::scope(|s| {
            let src_ref = &src;
            let b2 = &b;
            s.spawn(move || b2.send_payload(0, 1, src_ref));
            b.recv_payload(0, 1, &src, &mut dst);
        });
        assert_eq!(src, dst);
    }
}
