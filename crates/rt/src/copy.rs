//! Real-memory implementations of the paper's three copy strategies.
//!
//! * [`direct_copy`] — single copy, the userspace analogue of what KNEM
//!   achieves through the kernel (threads share an address space, so no
//!   kernel is needed here).
//! * [`DoubleBufferPipe`] — the default Nemesis LMT: sender copies
//!   chunks into a small ring of shared buffers while the receiver
//!   copies them out, the two copies pipelining against each other (§2).
//! * [`OffloadEngine`] — the I/OAT model: copies are submitted to a
//!   dedicated engine thread that processes descriptors strictly in
//!   order; completion notification is a trailing status-write
//!   descriptor, exactly the trick of Figure 2.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::queue::{nem_queue, Sender as QSender};

/// Single-copy transfer (the KNEM analogue).
pub fn direct_copy(src: &[u8], dst: &mut [u8]) {
    dst.copy_from_slice(src);
}

/// Marker trait for things that can run a transfer; used by benches.
pub trait CopyEngine {
    fn name(&self) -> &'static str;
}

/// Where the adaptive chunk schedule starts (one page): small first
/// chunks fill the pipeline fast — the receiver starts its overlapping
/// copy almost immediately — then the size doubles toward the slot
/// capacity so the steady state pays per-chunk flag traffic on big
/// chunks only.
pub const ADAPTIVE_CHUNK_START: usize = 4 << 10;

/// How the sender of a [`DoubleBufferPipe`] sizes its chunks — the rt
/// mirror of `nemesis_core::lmt::ChunkSchedule`. The learned variant
/// reads (and feeds) the pair's [`RtPairTune`]: one atomic load per
/// chunk decision, one timed recording per absorbed chunk, no
/// allocation.
#[derive(Clone, Default)]
pub enum PipeSchedule {
    /// Geometric doubling from the start chunk to the slot capacity
    /// (the adaptive default).
    #[default]
    Geometric,
    /// Constant chunks of the start size (with `start_chunk == chunk`
    /// this is the seed's fixed full-slot chunking).
    Fixed,
    /// Geometric growth toward the pair's learned sweet spot; chunk
    /// timings are recorded back into the same state.
    Learned(Arc<crate::tuner::RtPairTune>),
}

impl PipeSchedule {
    /// Growth ceiling given the slot capacity.
    fn cap(&self, slot_cap: usize) -> usize {
        match self {
            PipeSchedule::Geometric | PipeSchedule::Fixed => slot_cap,
            PipeSchedule::Learned(tune) => match tune.target() {
                0 => slot_cap,
                t => t.clamp(1, slot_cap),
            },
        }
    }

    /// Next chunk size after a fully-absorbed `current` chunk.
    fn next(&self, current: usize, slot_cap: usize) -> usize {
        match self {
            PipeSchedule::Fixed => current,
            _ => (current * 2).min(self.cap(slot_cap)),
        }
    }
}

/// The double-buffered copy ring. One sender thread and one receiver
/// thread may run [`DoubleBufferPipe::send`] / [`DoubleBufferPipe::recv`]
/// concurrently for the *same* transfer; the two copies overlap chunk by
/// chunk, "one thereby partially hiding the cost of the other" (§2).
///
/// Chunking is **adaptive**: the sender's first chunk is
/// `start_chunk` bytes (default [`ADAPTIVE_CHUNK_START`]) and grows on
/// every full chunk as its [`PipeSchedule`] dictates — doubling to the
/// slot capacity by default, or toward a learned per-pair sweet spot.
/// The receiver learns each chunk's size from the slot flag, so the two
/// sides need no chunk-size agreement.
pub struct DoubleBufferPipe {
    slots: Vec<Slot>,
    chunk: usize,
    start_chunk: usize,
    schedule: PipeSchedule,
    /// Transfers started (the learned schedule runs every 16th transfer
    /// unclamped as a probe, so chunk classes above the current sweet
    /// spot keep being sampled).
    sends: AtomicUsize,
}

struct Slot {
    /// 0 = empty, otherwise payload length.
    len: AtomicUsize,
    buf: parking_lot::Mutex<Box<[u8]>>,
}

impl DoubleBufferPipe {
    /// `nbufs = 2` gives the paper's double buffering; `chunk` is the
    /// slot capacity (the adaptive schedule's ceiling).
    pub fn new(chunk: usize, nbufs: usize) -> Self {
        Self::with_start_chunk(chunk, nbufs, ADAPTIVE_CHUNK_START)
    }

    /// Explicit first-chunk size; `start_chunk = chunk` restores the
    /// seed's fixed-size chunking (used by benches as the baseline).
    pub fn with_start_chunk(chunk: usize, nbufs: usize, start_chunk: usize) -> Self {
        Self::with_schedule(chunk, nbufs, start_chunk, PipeSchedule::Geometric)
    }

    /// Fully explicit constructor: slot capacity, buffer count, first
    /// chunk, and the growth schedule.
    pub fn with_schedule(
        chunk: usize,
        nbufs: usize,
        start_chunk: usize,
        schedule: PipeSchedule,
    ) -> Self {
        assert!(chunk > 0 && nbufs > 0 && start_chunk > 0);
        Self {
            slots: (0..nbufs)
                .map(|_| Slot {
                    len: AtomicUsize::new(0),
                    buf: parking_lot::Mutex::new(vec![0u8; chunk].into_boxed_slice()),
                })
                .collect(),
            chunk,
            start_chunk: start_chunk.min(chunk),
            schedule,
            sends: AtomicUsize::new(0),
        }
    }

    /// Copy `src` into the ring (first of the two copies), growing the
    /// chunk size per the schedule — geometrically from `start_chunk`
    /// to the slot capacity by default. Blocks (spin-then-yield) when
    /// the ring is full.
    ///
    /// Under the learned schedule, transfers with a published sweet
    /// spot run at it from the first byte (the model already priced
    /// the ramp in), while unlearned pairs and every 16th transfer (a
    /// *probe*) ramp from the start chunk to the slot capacity. Only
    /// those sampling transfers are timed: the steady-state inter-chunk
    /// interval (wait + copy + publish — the pipeline's true per-chunk
    /// cost) feeds the pair's chunk model, with the first `nbufs`
    /// chunks (pipeline fill) skipped. The non-probe hot path pays one
    /// counter increment and one atomic load over the fixed schedule —
    /// no clocks, no allocation.
    pub fn send(&self, src: &[u8]) {
        let n = self.slots.len();
        let mut bo = crate::backoff::Backoff::new();
        let tune = match &self.schedule {
            PipeSchedule::Learned(t) => Some(t),
            _ => None,
        };
        let published = tune.map(|t| t.target()).unwrap_or(0);
        let sampling = tune.is_some()
            && (published == 0 || self.sends.fetch_add(1, Ordering::Relaxed) % 16 == 15);
        let cap = if sampling {
            self.chunk
        } else {
            self.schedule.cap(self.chunk)
        };
        let mut cur = if published >= self.chunk {
            // Converged at the slot capacity: nothing below it can win a
            // probe that the model hasn't already rejected, so probes
            // only re-time the ceiling class — no ramp, no cost.
            self.chunk
        } else if sampling || published == 0 {
            self.start_chunk.min(cap)
        } else {
            cap
        };
        let mut at = 0usize;
        let mut i = 0usize;
        // Sampling transfers time *runs* of equal-sized chunks (one
        // clock pair per size, not per chunk — clock reads are not free
        // on every host) and record the per-chunk average; the first
        // `nbufs` chunks (pipeline fill) start the first run but are
        // not themselves counted.
        let mut run_start: Option<std::time::Instant> = None;
        let mut run_chunks = 0u32;
        let flush_run =
            |len: usize, run_start: &mut Option<std::time::Instant>, run_chunks: &mut u32| {
                if let (Some(t0), Some(tune), true) = (*run_start, tune, *run_chunks > 0) {
                    let nanos = t0.elapsed().as_nanos() as u64 / *run_chunks as u64;
                    tune.record_chunk(len, nanos);
                }
                *run_start = Some(std::time::Instant::now());
                *run_chunks = 0;
            };
        while at < src.len() {
            let len = cur.min(src.len() - at);
            let slot = &self.slots[i % n];
            while slot.len.load(Ordering::Acquire) != 0 {
                bo.snooze();
            }
            bo.reset();
            slot.buf.lock()[..len].copy_from_slice(&src[at..at + len]);
            slot.len.store(len, Ordering::Release);
            at += len;
            i += 1;
            if len == cur {
                if sampling {
                    if i <= n {
                        // Pipeline fill: restart the run clock so the
                        // cold chunks never enter the model.
                        run_start = Some(std::time::Instant::now());
                        run_chunks = 0;
                    } else {
                        run_chunks += 1;
                    }
                }
                let next = if sampling {
                    // Probes ramp through every class up to the slot
                    // capacity, regardless of the published target.
                    (cur * 2).min(cap)
                } else {
                    self.schedule.next(cur, self.chunk)
                };
                if sampling && next != cur {
                    flush_run(cur, &mut run_start, &mut run_chunks);
                }
                cur = next;
            }
        }
        if sampling {
            flush_run(cur, &mut run_start, &mut run_chunks);
        }
    }

    /// Copy out of the ring into `dst` (second copy), draining whatever
    /// chunk size the sender published. Blocks (spin-then-yield) until
    /// every byte has arrived.
    pub fn recv(&self, dst: &mut [u8]) {
        let n = self.slots.len();
        let mut bo = crate::backoff::Backoff::new();
        let mut at = 0usize;
        let mut i = 0usize;
        while at < dst.len() {
            let slot = &self.slots[i % n];
            let len = loop {
                let len = slot.len.load(Ordering::Acquire);
                if len != 0 {
                    break len;
                }
                bo.snooze();
            };
            bo.reset();
            assert!(len <= dst.len() - at, "chunk overruns the transfer");
            dst[at..at + len].copy_from_slice(&slot.buf.lock()[..len]);
            slot.len.store(0, Ordering::Release);
            at += len;
            i += 1;
        }
    }
}

impl CopyEngine for DoubleBufferPipe {
    fn name(&self) -> &'static str {
        "double-buffer"
    }
}

/// Raw copy descriptor shipped to the engine thread.
enum Desc {
    Copy {
        src: *const u8,
        dst: *mut u8,
        len: usize,
    },
    /// The Figure-2 completion trick: an in-order one-word store.
    Status(Arc<AtomicUsize>),
    /// Fault injection: makes the engine thread panic, exercising the
    /// poison containment (see [`OffloadEngine::inject_failure`]).
    Poison,
    Shutdown,
}

// SAFETY: descriptors only travel to the engine thread; the pointers'
// validity is guaranteed by the `Pending` borrow (see `submit`).
unsafe impl Send for Desc {}

/// Sets the shared poison word if the engine thread unwinds for any
/// reason, so waiters stop spinning instead of hanging on a status
/// write that will never come.
struct PoisonOnPanic(Arc<AtomicUsize>);

impl Drop for PoisonOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(1, Ordering::Release);
        }
    }
}

/// A dedicated copy engine thread processing descriptors strictly in
/// order — the I/OAT DMA engine analogue.
///
/// **Failure containment.** If the engine thread panics, the panic is
/// not allowed to strand waiters or poison the whole process: a drop
/// guard in the thread flips a shared poison word, every [`Pending`]
/// observes it and unblocks, and [`Pending::wait`] reports the failure
/// as `false` so callers can fall back to a CPU copy of the affected
/// span.
pub struct OffloadEngine {
    tx: QSender<Desc>,
    handle: Option<std::thread::JoinHandle<u64>>,
    poisoned: Arc<AtomicUsize>,
}

/// Completion handle for a submitted copy. Holds the buffers' borrows so
/// they cannot be touched (or freed) before completion.
pub struct Pending<'a> {
    flag: Arc<AtomicUsize>,
    poisoned: Arc<AtomicUsize>,
    _borrows: PhantomData<&'a mut [u8]>,
}

impl Pending<'_> {
    /// Has the engine finished with this copy (status written), or died
    /// trying (engine poisoned)? Either way the buffers are safe to
    /// reuse: a poisoned engine processes no further descriptors.
    pub fn poll(&self) -> bool {
        self.flag.load(Ordering::Acquire) != 0 || self.poisoned.load(Ordering::Acquire) != 0
    }

    /// Wait (spin-then-yield) until complete. Returns `true` if the
    /// engine wrote the trailing status (the copy finished), `false` if
    /// it died first — the caller owns the fallback (e.g.
    /// [`direct_copy`] the span on the CPU).
    pub fn wait(self) -> bool {
        let mut bo = crate::backoff::Backoff::new();
        while !self.poll() {
            bo.snooze();
        }
        self.flag.load(Ordering::Acquire) != 0
    }
}

impl Drop for Pending<'_> {
    fn drop(&mut self) {
        // Never release the borrows before the engine is done with the
        // pointers (or provably dead — a poisoned engine touches no
        // further descriptors).
        let mut bo = crate::backoff::Backoff::new();
        while self.flag.load(Ordering::Acquire) == 0 && self.poisoned.load(Ordering::Acquire) == 0 {
            bo.snooze();
        }
    }
}

impl OffloadEngine {
    pub fn start() -> Self {
        let (tx, mut rx) = nem_queue::<Desc>();
        let poisoned = Arc::new(AtomicUsize::new(0));
        let poison = Arc::clone(&poisoned);
        let handle = std::thread::spawn(move || {
            let _guard = PoisonOnPanic(poison);
            let mut bytes = 0u64;
            let mut bo = crate::backoff::Backoff::new();
            loop {
                match rx.dequeue() {
                    Some(Desc::Copy { src, dst, len }) => {
                        // SAFETY: the submitting side keeps both regions
                        // borrowed (Pending) until the trailing status
                        // write completes, and regions are disjoint by
                        // &/&mut construction.
                        unsafe { std::ptr::copy_nonoverlapping(src, dst, len) };
                        bytes += len as u64;
                        bo.reset();
                    }
                    Some(Desc::Status(flag)) => {
                        flag.store(1, Ordering::Release);
                        bo.reset();
                    }
                    Some(Desc::Poison) => panic!("injected engine failure"),
                    Some(Desc::Shutdown) => return bytes,
                    None => bo.snooze(),
                }
            }
        });
        Self {
            tx,
            handle: Some(handle),
            poisoned,
        }
    }

    /// Whether the engine thread has died (panicked). Submissions after
    /// this complete immediately with `wait() == false`.
    pub fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) != 0
    }

    /// Fault injection: enqueue a descriptor that makes the engine
    /// thread panic in-order (after every previously submitted copy),
    /// exercising the poison containment end to end.
    pub fn inject_failure(&self) {
        self.tx.enqueue(Desc::Poison);
    }

    /// Submit a copy; returns a completion handle tied to the buffers'
    /// lifetimes. The payload is split into page-sized descriptors (as
    /// pinned user memory would be) followed by the status descriptor.
    pub fn submit<'a>(&self, src: &'a [u8], dst: &'a mut [u8]) -> Pending<'a> {
        assert_eq!(src.len(), dst.len());
        const PAGE: usize = 4096;
        let flag = Arc::new(AtomicUsize::new(0));
        let mut off = 0;
        while off < src.len() {
            let len = (src.len() - off).min(PAGE);
            self.tx.enqueue(Desc::Copy {
                src: src[off..].as_ptr(),
                dst: dst[off..].as_mut_ptr(),
                len,
            });
            off += len;
        }
        self.tx.enqueue(Desc::Status(Arc::clone(&flag)));
        Pending {
            flag,
            poisoned: Arc::clone(&self.poisoned),
            _borrows: PhantomData,
        }
    }

    /// Stop the engine; returns total bytes it copied (0 if the thread
    /// had already died of an injected or real panic — the panic was
    /// contained when the poison word was set, not re-thrown here).
    pub fn shutdown(mut self) -> u64 {
        self.tx.enqueue(Desc::Shutdown);
        self.handle.take().unwrap().join().unwrap_or(0)
    }
}

impl Drop for OffloadEngine {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            self.tx.enqueue(Desc::Shutdown);
            let _ = h.join();
        }
    }
}

impl CopyEngine for OffloadEngine {
    fn name(&self) -> &'static str {
        "offload-engine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn direct_copy_works() {
        let src = pattern(10_000);
        let mut dst = vec![0u8; 10_000];
        direct_copy(&src, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn double_buffer_pipelined_transfer() {
        let pipe = Arc::new(DoubleBufferPipe::new(32 << 10, 2));
        let src = pattern(1 << 20);
        let mut dst = vec![0u8; 1 << 20];
        std::thread::scope(|s| {
            let p2 = Arc::clone(&pipe);
            let src_ref = &src;
            s.spawn(move || p2.send(src_ref));
            pipe.recv(&mut dst);
        });
        assert_eq!(src, dst);
    }

    #[test]
    fn double_buffer_odd_sizes() {
        for size in [1usize, 100, 32 << 10, (32 << 10) + 1, 123_457] {
            let pipe = Arc::new(DoubleBufferPipe::new(32 << 10, 2));
            let src = pattern(size);
            let mut dst = vec![0u8; size];
            std::thread::scope(|s| {
                let p2 = Arc::clone(&pipe);
                let src_ref = &src;
                s.spawn(move || p2.send(src_ref));
                pipe.recv(&mut dst);
            });
            assert_eq!(src, dst, "size {size}");
        }
    }

    #[test]
    fn adaptive_and_fixed_chunking_deliver_identical_bytes() {
        let src = pattern(777_777);
        for pipe in [
            DoubleBufferPipe::new(32 << 10, 2),
            DoubleBufferPipe::with_start_chunk(32 << 10, 2, 32 << 10), // seed's fixed chunks
            DoubleBufferPipe::with_start_chunk(32 << 10, 2, 1),        // degenerate start
        ] {
            let pipe = Arc::new(pipe);
            let mut dst = vec![0u8; src.len()];
            std::thread::scope(|s| {
                let p2 = Arc::clone(&pipe);
                let src_ref = &src;
                s.spawn(move || p2.send(src_ref));
                pipe.recv(&mut dst);
            });
            assert_eq!(src, dst);
        }
    }

    #[test]
    fn double_buffer_back_to_back_transfers() {
        let pipe = Arc::new(DoubleBufferPipe::new(4 << 10, 2));
        for round in 0..5u8 {
            let src = vec![round; 40_000];
            let mut dst = vec![0u8; 40_000];
            std::thread::scope(|s| {
                let p2 = Arc::clone(&pipe);
                let src_ref = &src;
                s.spawn(move || p2.send(src_ref));
                pipe.recv(&mut dst);
            });
            assert_eq!(src, dst, "round {round}");
        }
    }

    #[test]
    fn offload_engine_copies_and_completes_in_order() {
        let eng = OffloadEngine::start();
        let src = pattern(256 << 10);
        let mut dst = vec![0u8; 256 << 10];
        let pending = eng.submit(&src, &mut dst);
        pending.wait();
        assert_eq!(src, dst);
        // Status wrote only after the payload: verified by the data
        // being complete at wait() return. Shutdown reports the bytes.
        assert_eq!(eng.shutdown(), 256 << 10);
    }

    #[test]
    fn offload_engine_overlaps_with_compute() {
        let eng = OffloadEngine::start();
        let src = pattern(1 << 20);
        let mut dst = vec![0u8; 1 << 20];
        let pending = eng.submit(&src, &mut dst);
        // "Compute" while the engine copies.
        let mut acc = 0u64;
        for i in 0..100_000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        assert_ne!(acc, 0);
        pending.wait();
        assert_eq!(src, dst);
    }

    #[test]
    fn offload_multiple_submissions_in_order() {
        let eng = OffloadEngine::start();
        let src1 = vec![1u8; 10_000];
        let src2 = vec![2u8; 10_000];
        let mut d1 = vec![0u8; 10_000];
        let mut d2 = vec![0u8; 10_000];
        let p1 = eng.submit(&src1, &mut d1);
        let p2 = eng.submit(&src2, &mut d2);
        // In-order channel: p2 complete implies p1 complete.
        p2.wait();
        assert!(p1.poll());
        p1.wait();
        assert_eq!(d1, src1);
        assert_eq!(d2, src2);
    }

    #[test]
    fn engine_panic_is_contained_and_waiters_unblock() {
        let eng = OffloadEngine::start();
        let src = pattern(64 << 10);
        let mut dst = vec![0u8; 64 << 10];
        // A copy submitted before the failure completes normally (the
        // poison descriptor is processed in order, after it).
        assert!(eng.submit(&src, &mut dst).wait());
        assert_eq!(src, dst);
        eng.inject_failure();
        // A copy submitted behind the poison never runs: its wait must
        // still return (no strand), reporting the failure.
        let mut dead = vec![0u8; 64 << 10];
        let pending = eng.submit(&src, &mut dead);
        assert!(!pending.wait(), "post-poison copy must report failure");
        assert!(eng.poisoned());
        assert!(dead.iter().all(|&b| b == 0), "dead copy wrote nothing");
        // Shutdown does not re-throw the contained panic.
        assert_eq!(eng.shutdown(), 0);
    }

    #[test]
    fn pending_drop_blocks_until_done() {
        let eng = OffloadEngine::start();
        let src = pattern(512 << 10);
        let mut dst = vec![0u8; 512 << 10];
        {
            let _pending = eng.submit(&src, &mut dst);
            // Dropped without wait(): Drop must block until complete so
            // the borrows never dangle.
        }
        assert_eq!(src, dst);
    }
}
