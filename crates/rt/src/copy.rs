//! Real-memory implementations of the paper's three copy strategies.
//!
//! * [`direct_copy`] — single copy, the userspace analogue of what KNEM
//!   achieves through the kernel (threads share an address space, so no
//!   kernel is needed here).
//! * [`DoubleBufferPipe`] — the default Nemesis LMT: sender copies
//!   chunks into a small ring of shared buffers while the receiver
//!   copies them out, the two copies pipelining against each other (§2).
//! * [`OffloadEngine`] — the I/OAT model: copies are submitted to a
//!   dedicated engine thread that processes descriptors strictly in
//!   order; completion notification is a trailing status-write
//!   descriptor, exactly the trick of Figure 2.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::queue::{nem_queue, Sender as QSender};

/// Single-copy transfer (the KNEM analogue).
pub fn direct_copy(src: &[u8], dst: &mut [u8]) {
    dst.copy_from_slice(src);
}

/// Copy with an explicit SIMD store loop whose only variable is the
/// store flavour: `nt = false` issues regular (temporal, write-allocate)
/// stores, `nt = true` issues non-temporal streaming stores that bypass
/// the cache hierarchy and combine into full-line writes. Streaming
/// stores skip the read-for-ownership of every destination line — two
/// bytes of memory traffic per copied byte instead of three — which is
/// a win exactly when the destination won't be read back from cache
/// (transfers larger than the LLC); below that, evicting the hot
/// destination is a loss. The threshold is the tuner's to learn
/// ([`crate::tuner::RtPairTune::nt_decision`]), never hardcoded here.
///
/// On non-x86_64 hosts both flavours fall back to `copy_from_slice`.
pub fn simd_copy(src: &[u8], dst: &mut [u8], nt: bool) {
    assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: SSE2 is baseline on x86_64; lengths are equal and the
        // slices are disjoint by &/&mut construction.
        unsafe { sse2_copy(src.as_ptr(), dst.as_mut_ptr(), src.len(), nt) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = nt;
        dst.copy_from_slice(src);
    }
}

/// Streaming-store copy (`simd_copy` with `nt = true`): the engine for
/// over-LLC destinations.
pub fn nt_copy(src: &[u8], dst: &mut [u8]) {
    simd_copy(src, dst, true);
}

#[cfg(target_arch = "x86_64")]
unsafe fn sse2_copy(src: *const u8, dst: *mut u8, len: usize, nt: bool) {
    use std::arch::x86_64::*;
    let mut off = 0usize;
    // Head: byte copy up to the destination's 16-byte boundary
    // (streaming stores require aligned addresses).
    let mis = (dst as usize).wrapping_neg() & 15;
    if mis > 0 {
        let head = mis.min(len);
        std::ptr::copy_nonoverlapping(src, dst, head);
        off = head;
    }
    // Body: one cache line per iteration, unaligned loads (the source's
    // alignment is whatever the ring slot gave us), aligned stores.
    while off + 64 <= len {
        let a = _mm_loadu_si128(src.add(off) as *const __m128i);
        let b = _mm_loadu_si128(src.add(off + 16) as *const __m128i);
        let c = _mm_loadu_si128(src.add(off + 32) as *const __m128i);
        let d = _mm_loadu_si128(src.add(off + 48) as *const __m128i);
        if nt {
            _mm_stream_si128(dst.add(off) as *mut __m128i, a);
            _mm_stream_si128(dst.add(off + 16) as *mut __m128i, b);
            _mm_stream_si128(dst.add(off + 32) as *mut __m128i, c);
            _mm_stream_si128(dst.add(off + 48) as *mut __m128i, d);
        } else {
            _mm_store_si128(dst.add(off) as *mut __m128i, a);
            _mm_store_si128(dst.add(off + 16) as *mut __m128i, b);
            _mm_store_si128(dst.add(off + 32) as *mut __m128i, c);
            _mm_store_si128(dst.add(off + 48) as *mut __m128i, d);
        }
        off += 64;
    }
    // Tail.
    if off < len {
        std::ptr::copy_nonoverlapping(src.add(off), dst.add(off), len - off);
    }
    if nt {
        // Streaming stores are weakly ordered: fence before the caller
        // publishes the buffer (the ring's flag store must not pass the
        // payload).
        _mm_sfence();
    }
}

/// Marker trait for things that can run a transfer; used by benches.
pub trait CopyEngine {
    fn name(&self) -> &'static str;
}

/// Where the adaptive chunk schedule starts (one page): small first
/// chunks fill the pipeline fast — the receiver starts its overlapping
/// copy almost immediately — then the size doubles toward the slot
/// capacity so the steady state pays per-chunk flag traffic on big
/// chunks only.
pub const ADAPTIVE_CHUNK_START: usize = 4 << 10;

/// How the sender of a [`DoubleBufferPipe`] sizes its chunks — the rt
/// mirror of `nemesis_core::lmt::ChunkSchedule`. The learned variant
/// reads (and feeds) the pair's [`RtPairTune`]: one atomic load per
/// chunk decision, one timed recording per absorbed chunk, no
/// allocation.
#[derive(Clone, Default)]
pub enum PipeSchedule {
    /// Geometric doubling from the start chunk to the slot capacity
    /// (the adaptive default).
    #[default]
    Geometric,
    /// Constant chunks of the start size (with `start_chunk == chunk`
    /// this is the seed's fixed full-slot chunking).
    Fixed,
    /// Geometric growth toward the pair's learned sweet spot; chunk
    /// timings are recorded back into the same state.
    Learned(Arc<crate::tuner::RtPairTune>),
}

impl PipeSchedule {
    /// Growth ceiling given the slot capacity.
    fn cap(&self, slot_cap: usize) -> usize {
        match self {
            PipeSchedule::Geometric | PipeSchedule::Fixed => slot_cap,
            PipeSchedule::Learned(tune) => match tune.target() {
                0 => slot_cap,
                t => t.clamp(1, slot_cap),
            },
        }
    }

    /// Next chunk size after a fully-absorbed `current` chunk.
    fn next(&self, current: usize, slot_cap: usize) -> usize {
        match self {
            PipeSchedule::Fixed => current,
            _ => (current * 2).min(self.cap(slot_cap)),
        }
    }
}

/// The double-buffered copy ring. One sender thread and one receiver
/// thread may run [`DoubleBufferPipe::send`] / [`DoubleBufferPipe::recv`]
/// concurrently for the *same* transfer; the two copies overlap chunk by
/// chunk, "one thereby partially hiding the cost of the other" (§2).
///
/// Chunking is **adaptive**: the sender's first chunk is
/// `start_chunk` bytes (default [`ADAPTIVE_CHUNK_START`]) and grows on
/// every full chunk as its [`PipeSchedule`] dictates — doubling to the
/// slot capacity by default, or toward a learned per-pair sweet spot.
/// The receiver learns each chunk's size from the slot flag, so the two
/// sides need no chunk-size agreement.
pub struct DoubleBufferPipe {
    slots: Vec<Slot>,
    chunk: usize,
    start_chunk: usize,
    schedule: PipeSchedule,
    /// Transfers started (the learned schedule runs every 16th transfer
    /// unclamped as a probe, so chunk classes above the current sweet
    /// spot keep being sampled).
    sends: AtomicUsize,
    /// 0 until the slot buffers are allocated and first-touched. The
    /// *receiver* initializes them at its first `recv` (the sender
    /// backoff-waits): under first-touch NUMA policy the ring's pages
    /// then live on the receiver's node, so the drain copy — the
    /// transfer's critical path — never crosses sockets for its reads.
    ready: AtomicUsize,
}

struct Slot {
    /// 0 = empty, otherwise payload length.
    len: AtomicUsize,
    /// Empty until the receiver's first-touch init (see
    /// [`DoubleBufferPipe::ready`]); untouched pairs cost no memory.
    buf: parking_lot::Mutex<Box<[u8]>>,
}

impl DoubleBufferPipe {
    /// `nbufs = 2` gives the paper's double buffering; `chunk` is the
    /// slot capacity (the adaptive schedule's ceiling).
    pub fn new(chunk: usize, nbufs: usize) -> Self {
        Self::with_start_chunk(chunk, nbufs, ADAPTIVE_CHUNK_START)
    }

    /// Explicit first-chunk size; `start_chunk = chunk` restores the
    /// seed's fixed-size chunking (used by benches as the baseline).
    pub fn with_start_chunk(chunk: usize, nbufs: usize, start_chunk: usize) -> Self {
        Self::with_schedule(chunk, nbufs, start_chunk, PipeSchedule::Geometric)
    }

    /// Fully explicit constructor: slot capacity, buffer count, first
    /// chunk, and the growth schedule.
    pub fn with_schedule(
        chunk: usize,
        nbufs: usize,
        start_chunk: usize,
        schedule: PipeSchedule,
    ) -> Self {
        assert!(chunk > 0 && nbufs > 0 && start_chunk > 0);
        Self {
            slots: (0..nbufs)
                .map(|_| Slot {
                    len: AtomicUsize::new(0),
                    buf: parking_lot::Mutex::new(Box::default()),
                })
                .collect(),
            chunk,
            start_chunk: start_chunk.min(chunk),
            schedule,
            sends: AtomicUsize::new(0),
            ready: AtomicUsize::new(0),
        }
    }

    /// Allocate and first-touch the slot buffers from the calling
    /// thread. `recv` runs this on its first drain so the pages land on
    /// the receiver's NUMA node; the zeroing write below is what forces
    /// the page faults (a fresh zeroed allocation maps the kernel's
    /// shared zero page and would be placed by whoever writes first —
    /// i.e. the sender — without it).
    fn ensure_local(&self) {
        if self.ready.load(Ordering::Acquire) != 0 {
            return;
        }
        for slot in &self.slots {
            let mut buf = slot.buf.lock();
            if buf.is_empty() {
                let mut b = vec![0u8; self.chunk].into_boxed_slice();
                for i in (0..b.len()).step_by(4096) {
                    // Volatile defeats the "writing zero to zeroed
                    // memory" elision; one store per page is enough to
                    // fault it in.
                    unsafe { b.as_mut_ptr().add(i).write_volatile(0) };
                }
                *buf = b;
            }
        }
        self.ready.store(1, Ordering::Release);
    }

    /// Copy `src` into the ring (first of the two copies), growing the
    /// chunk size per the schedule — geometrically from `start_chunk`
    /// to the slot capacity by default. Blocks (spin-then-yield) when
    /// the ring is full.
    ///
    /// Under the learned schedule, transfers with a published sweet
    /// spot run at it from the first byte (the model already priced
    /// the ramp in), while unlearned pairs and every 16th transfer (a
    /// *probe*) ramp from the start chunk to the slot capacity. Only
    /// those sampling transfers are timed: the steady-state inter-chunk
    /// interval (wait + copy + publish — the pipeline's true per-chunk
    /// cost) feeds the pair's chunk model, with the first `nbufs`
    /// chunks (pipeline fill) skipped. The non-probe hot path pays one
    /// counter increment and one atomic load over the fixed schedule —
    /// no clocks, no allocation.
    pub fn send(&self, src: &[u8]) {
        let n = self.slots.len();
        let mut bo = crate::backoff::Backoff::new();
        // The receiver owns the ring's first touch (NUMA placement);
        // wait for it before writing any slot. The rendezvous protocol
        // guarantees a receiver is (or will be) draining this transfer,
        // so this is the same wait as a full ring.
        while self.ready.load(Ordering::Acquire) == 0 {
            bo.snooze();
        }
        bo.reset();
        let tune = match &self.schedule {
            PipeSchedule::Learned(t) => Some(t),
            _ => None,
        };
        let published = tune.map(|t| t.target()).unwrap_or(0);
        let sampling = tune.is_some()
            && (published == 0 || self.sends.fetch_add(1, Ordering::Relaxed) % 16 == 15);
        let cap = if sampling {
            self.chunk
        } else {
            self.schedule.cap(self.chunk)
        };
        let mut cur = if published >= self.chunk {
            // Converged at the slot capacity: nothing below it can win a
            // probe that the model hasn't already rejected, so probes
            // only re-time the ceiling class — no ramp, no cost.
            self.chunk
        } else if sampling || published == 0 {
            self.start_chunk.min(cap)
        } else {
            cap
        };
        let mut at = 0usize;
        let mut i = 0usize;
        // Sampling transfers time *runs* of equal-sized chunks (one
        // clock pair per size, not per chunk — clock reads are not free
        // on every host) and record the per-chunk average; the first
        // `nbufs` chunks (pipeline fill) start the first run but are
        // not themselves counted.
        let mut run_start: Option<std::time::Instant> = None;
        let mut run_chunks = 0u32;
        let flush_run =
            |len: usize, run_start: &mut Option<std::time::Instant>, run_chunks: &mut u32| {
                if let (Some(t0), Some(tune), true) = (*run_start, tune, *run_chunks > 0) {
                    let nanos = t0.elapsed().as_nanos() as u64 / *run_chunks as u64;
                    tune.record_chunk(len, nanos);
                }
                *run_start = Some(std::time::Instant::now());
                *run_chunks = 0;
            };
        while at < src.len() {
            let len = cur.min(src.len() - at);
            let slot = &self.slots[i % n];
            while slot.len.load(Ordering::Acquire) != 0 {
                bo.snooze();
            }
            bo.reset();
            slot.buf.lock()[..len].copy_from_slice(&src[at..at + len]);
            slot.len.store(len, Ordering::Release);
            at += len;
            i += 1;
            if len == cur {
                if sampling {
                    if i <= n {
                        // Pipeline fill: restart the run clock so the
                        // cold chunks never enter the model.
                        run_start = Some(std::time::Instant::now());
                        run_chunks = 0;
                    } else {
                        run_chunks += 1;
                    }
                }
                let next = if sampling {
                    // Probes ramp through every class up to the slot
                    // capacity, regardless of the published target.
                    (cur * 2).min(cap)
                } else {
                    self.schedule.next(cur, self.chunk)
                };
                if sampling && next != cur {
                    flush_run(cur, &mut run_start, &mut run_chunks);
                }
                cur = next;
            }
        }
        if sampling {
            flush_run(cur, &mut run_start, &mut run_chunks);
        }
    }

    /// Copy out of the ring into `dst` (second copy), draining whatever
    /// chunk size the sender published. Blocks (spin-then-yield) until
    /// every byte has arrived.
    ///
    /// The first call allocates and first-touches the ring from this
    /// thread (NUMA placement — see [`DoubleBufferPipe::ensure_local`]).
    /// The drain's ring→user stores are the transfer's only
    /// final-destination writes, so the store flavour is decided here,
    /// once per transfer: streaming (non-temporal) stores for
    /// destinations past the pair's learned threshold (LLC-size prior
    /// until learned), regular stores below it. Learned pipes time the
    /// pure copy work and feed the pair's NT crossover model.
    pub fn recv(&self, dst: &mut [u8]) {
        self.ensure_local();
        let tune = match &self.schedule {
            PipeSchedule::Learned(t) => Some(t),
            _ => None,
        };
        let llc = crate::tuner::host_llc_size();
        let nt = match tune {
            Some(t) => t.nt_decision(dst.len(), llc),
            None => dst.len() >= llc,
        };
        let n = self.slots.len();
        let mut bo = crate::backoff::Backoff::new();
        let mut at = 0usize;
        let mut i = 0usize;
        let mut copy_nanos = 0u64;
        while at < dst.len() {
            let slot = &self.slots[i % n];
            let len = loop {
                let len = slot.len.load(Ordering::Acquire);
                if len != 0 {
                    break len;
                }
                bo.snooze();
            };
            bo.reset();
            assert!(len <= dst.len() - at, "chunk overruns the transfer");
            if tune.is_some() {
                // Time only the copy (the wait above is the sender's
                // cost) — the crossover model's sample.
                let t0 = std::time::Instant::now();
                copy_chunk(&slot.buf.lock()[..len], &mut dst[at..at + len], nt);
                copy_nanos += t0.elapsed().as_nanos() as u64;
            } else {
                copy_chunk(&slot.buf.lock()[..len], &mut dst[at..at + len], nt);
            }
            slot.len.store(0, Ordering::Release);
            at += len;
            i += 1;
        }
        if let Some(tune) = tune {
            tune.record_copy_mode(nt, dst.len(), copy_nanos);
        }
    }
}

/// One ring-drain chunk copy in the decided store flavour: regular
/// stores ride `memcpy` (the general-purpose best below the LLC),
/// streaming stores the explicit [`nt_copy`] loop.
fn copy_chunk(src: &[u8], dst: &mut [u8], nt: bool) {
    if nt {
        nt_copy(src, dst);
    } else {
        dst.copy_from_slice(src);
    }
}

impl CopyEngine for DoubleBufferPipe {
    fn name(&self) -> &'static str {
        "double-buffer"
    }
}

/// Raw copy descriptor shipped to the engine thread.
enum Desc {
    Copy {
        src: *const u8,
        dst: *mut u8,
        len: usize,
    },
    /// The Figure-2 completion trick: an in-order one-word store.
    Status(Arc<AtomicUsize>),
    /// Fault injection: makes the engine thread panic, exercising the
    /// poison containment (see [`OffloadEngine::inject_failure`]).
    Poison,
    Shutdown,
}

// SAFETY: descriptors only travel to the engine thread; the pointers'
// validity is guaranteed by the `Pending` borrow (see `submit`).
unsafe impl Send for Desc {}

/// Sets the shared poison word if the engine thread unwinds for any
/// reason, so waiters stop spinning instead of hanging on a status
/// write that will never come.
struct PoisonOnPanic(Arc<AtomicUsize>);

impl Drop for PoisonOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(1, Ordering::Release);
        }
    }
}

/// A dedicated copy engine thread processing descriptors strictly in
/// order — the I/OAT DMA engine analogue.
///
/// **Failure containment.** If the engine thread panics, the panic is
/// not allowed to strand waiters or poison the whole process: a drop
/// guard in the thread flips a shared poison word, every [`Pending`]
/// observes it and unblocks, and [`Pending::wait`] reports the failure
/// as `false` so callers can fall back to a CPU copy of the affected
/// span.
pub struct OffloadEngine {
    tx: QSender<Desc>,
    handle: Option<std::thread::JoinHandle<u64>>,
    poisoned: Arc<AtomicUsize>,
}

/// Completion handle for a submitted copy. Holds the buffers' borrows so
/// they cannot be touched (or freed) before completion.
pub struct Pending<'a> {
    flag: Arc<AtomicUsize>,
    poisoned: Arc<AtomicUsize>,
    _borrows: PhantomData<&'a mut [u8]>,
}

impl Pending<'_> {
    /// Has the engine finished with this copy (status written), or died
    /// trying (engine poisoned)? Either way the buffers are safe to
    /// reuse: a poisoned engine processes no further descriptors.
    pub fn poll(&self) -> bool {
        self.flag.load(Ordering::Acquire) != 0 || self.poisoned.load(Ordering::Acquire) != 0
    }

    /// Wait (spin-then-yield) until complete. Returns `true` if the
    /// engine wrote the trailing status (the copy finished), `false` if
    /// it died first — the caller owns the fallback (e.g.
    /// [`direct_copy`] the span on the CPU).
    pub fn wait(self) -> bool {
        let mut bo = crate::backoff::Backoff::new();
        while !self.poll() {
            bo.snooze();
        }
        self.flag.load(Ordering::Acquire) != 0
    }
}

impl Drop for Pending<'_> {
    fn drop(&mut self) {
        // Never release the borrows before the engine is done with the
        // pointers (or provably dead — a poisoned engine touches no
        // further descriptors).
        let mut bo = crate::backoff::Backoff::new();
        while self.flag.load(Ordering::Acquire) == 0 && self.poisoned.load(Ordering::Acquire) == 0 {
            bo.snooze();
        }
    }
}

impl OffloadEngine {
    pub fn start() -> Self {
        let (tx, mut rx) = nem_queue::<Desc>();
        let poisoned = Arc::new(AtomicUsize::new(0));
        let poison = Arc::clone(&poisoned);
        let handle = std::thread::spawn(move || {
            let _guard = PoisonOnPanic(poison);
            let mut bytes = 0u64;
            let mut bo = crate::backoff::Backoff::new();
            loop {
                match rx.dequeue() {
                    Some(Desc::Copy { src, dst, len }) => {
                        // SAFETY: the submitting side keeps both regions
                        // borrowed (Pending) until the trailing status
                        // write completes, and regions are disjoint by
                        // &/&mut construction.
                        unsafe { std::ptr::copy_nonoverlapping(src, dst, len) };
                        bytes += len as u64;
                        bo.reset();
                    }
                    Some(Desc::Status(flag)) => {
                        flag.store(1, Ordering::Release);
                        bo.reset();
                    }
                    Some(Desc::Poison) => panic!("injected engine failure"),
                    Some(Desc::Shutdown) => return bytes,
                    None => bo.snooze(),
                }
            }
        });
        Self {
            tx,
            handle: Some(handle),
            poisoned,
        }
    }

    /// Whether the engine thread has died (panicked). Submissions after
    /// this complete immediately with `wait() == false`.
    pub fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) != 0
    }

    /// Fault injection: enqueue a descriptor that makes the engine
    /// thread panic in-order (after every previously submitted copy),
    /// exercising the poison containment end to end.
    pub fn inject_failure(&self) {
        self.tx.enqueue(Desc::Poison);
    }

    /// Submit a copy; returns a completion handle tied to the buffers'
    /// lifetimes. The payload is split into descriptors at huge-page
    /// granularity (2 MiB — the windows pinned user memory now comes
    /// in; descriptors used to be cut per 4 KiB page, and the
    /// per-descriptor queue traffic was a measurable tax on striped
    /// rails) followed by the status descriptor.
    pub fn submit<'a>(&self, src: &'a [u8], dst: &'a mut [u8]) -> Pending<'a> {
        assert_eq!(src.len(), dst.len());
        const HUGE_PAGE: usize = 2 << 20;
        let flag = Arc::new(AtomicUsize::new(0));
        let mut off = 0;
        while off < src.len() {
            let len = (src.len() - off).min(HUGE_PAGE);
            self.tx.enqueue(Desc::Copy {
                src: src[off..].as_ptr(),
                dst: dst[off..].as_mut_ptr(),
                len,
            });
            off += len;
        }
        self.tx.enqueue(Desc::Status(Arc::clone(&flag)));
        Pending {
            flag,
            poisoned: Arc::clone(&self.poisoned),
            _borrows: PhantomData,
        }
    }

    /// Stop the engine; returns total bytes it copied (0 if the thread
    /// had already died of an injected or real panic — the panic was
    /// contained when the poison word was set, not re-thrown here).
    pub fn shutdown(mut self) -> u64 {
        self.tx.enqueue(Desc::Shutdown);
        self.handle.take().unwrap().join().unwrap_or(0)
    }
}

impl Drop for OffloadEngine {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            self.tx.enqueue(Desc::Shutdown);
            let _ = h.join();
        }
    }
}

impl CopyEngine for OffloadEngine {
    fn name(&self) -> &'static str {
        "offload-engine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn direct_copy_works() {
        let src = pattern(10_000);
        let mut dst = vec![0u8; 10_000];
        direct_copy(&src, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn simd_copy_is_byte_identical_for_both_store_flavours() {
        // Odd lengths and deliberately misaligned windows: head, 64-byte
        // body, and tail paths all exercised, in both flavours.
        for len in [0usize, 1, 15, 16, 63, 64, 65, 4097, 70_001] {
            for off in [0usize, 1, 7, 13] {
                let backing_src = pattern(len + off + 16);
                let mut backing_dst = vec![0u8; len + off + 16];
                for nt in [false, true] {
                    backing_dst.fill(0xAA);
                    let src = &backing_src[off..off + len];
                    let dst = &mut backing_dst[off..off + len];
                    simd_copy(src, dst, nt);
                    assert_eq!(src, dst, "len={len} off={off} nt={nt}");
                }
                assert_eq!(backing_dst[len + off], 0xAA, "overrun past the window");
            }
        }
    }

    #[test]
    fn ring_slots_are_lazy_until_the_receiver_first_touches() {
        let pipe = Arc::new(DoubleBufferPipe::new(32 << 10, 2));
        // Construction allocates nothing: slot buffers stay empty until
        // a receiver runs (first-touch NUMA placement is the receiver's
        // job, and untouched pairs must cost no memory).
        assert_eq!(pipe.ready.load(Ordering::Relaxed), 0);
        for slot in &pipe.slots {
            assert!(slot.buf.lock().is_empty(), "slot allocated before recv");
        }
        let src = pattern(100_000);
        let mut dst = vec![0u8; 100_000];
        std::thread::scope(|s| {
            let p2 = Arc::clone(&pipe);
            let src_ref = &src;
            // The sender starts first and must simply wait for the
            // receiver's first-touch, not deadlock or write early.
            s.spawn(move || p2.send(src_ref));
            std::thread::sleep(std::time::Duration::from_millis(5));
            pipe.recv(&mut dst);
        });
        assert_eq!(src, dst);
        assert_eq!(pipe.ready.load(Ordering::Relaxed), 1);
        for slot in &pipe.slots {
            assert_eq!(slot.buf.lock().len(), 32 << 10, "slot sized after recv");
        }
    }

    #[test]
    fn forced_nt_drain_stays_byte_identical_and_feeds_the_model() {
        // Pre-learn a tiny NT threshold so a 1 MiB transfer drains with
        // streaming stores even on hosts with a huge LLC; parity must
        // hold and the drain must feed the crossover model.
        let tune = Arc::new(crate::tuner::RtTuner::new(2).pair(0, 1));
        for _ in 0..4 {
            // NT decisively faster at the smallest class → threshold
            // publishes at 64 KiB.
            tune.record_copy_mode(false, 64 << 10, 20_000);
            tune.record_copy_mode(true, 64 << 10, 10_000);
        }
        assert_eq!(tune.nt_min(), 64 << 10);
        let pipe = Arc::new(DoubleBufferPipe::with_schedule(
            32 << 10,
            2,
            ADAPTIVE_CHUNK_START,
            PipeSchedule::Learned(Arc::clone(&tune)),
        ));
        let src = pattern(1 << 20);
        let mut dst = vec![0u8; 1 << 20];
        std::thread::scope(|s| {
            let p2 = Arc::clone(&pipe);
            let src_ref = &src;
            s.spawn(move || p2.send(src_ref));
            pipe.recv(&mut dst);
        });
        assert_eq!(src, dst, "NT drain corrupted the payload");
    }

    #[test]
    fn double_buffer_pipelined_transfer() {
        let pipe = Arc::new(DoubleBufferPipe::new(32 << 10, 2));
        let src = pattern(1 << 20);
        let mut dst = vec![0u8; 1 << 20];
        std::thread::scope(|s| {
            let p2 = Arc::clone(&pipe);
            let src_ref = &src;
            s.spawn(move || p2.send(src_ref));
            pipe.recv(&mut dst);
        });
        assert_eq!(src, dst);
    }

    #[test]
    fn double_buffer_odd_sizes() {
        for size in [1usize, 100, 32 << 10, (32 << 10) + 1, 123_457] {
            let pipe = Arc::new(DoubleBufferPipe::new(32 << 10, 2));
            let src = pattern(size);
            let mut dst = vec![0u8; size];
            std::thread::scope(|s| {
                let p2 = Arc::clone(&pipe);
                let src_ref = &src;
                s.spawn(move || p2.send(src_ref));
                pipe.recv(&mut dst);
            });
            assert_eq!(src, dst, "size {size}");
        }
    }

    #[test]
    fn adaptive_and_fixed_chunking_deliver_identical_bytes() {
        let src = pattern(777_777);
        for pipe in [
            DoubleBufferPipe::new(32 << 10, 2),
            DoubleBufferPipe::with_start_chunk(32 << 10, 2, 32 << 10), // seed's fixed chunks
            DoubleBufferPipe::with_start_chunk(32 << 10, 2, 1),        // degenerate start
        ] {
            let pipe = Arc::new(pipe);
            let mut dst = vec![0u8; src.len()];
            std::thread::scope(|s| {
                let p2 = Arc::clone(&pipe);
                let src_ref = &src;
                s.spawn(move || p2.send(src_ref));
                pipe.recv(&mut dst);
            });
            assert_eq!(src, dst);
        }
    }

    #[test]
    fn double_buffer_back_to_back_transfers() {
        let pipe = Arc::new(DoubleBufferPipe::new(4 << 10, 2));
        for round in 0..5u8 {
            let src = vec![round; 40_000];
            let mut dst = vec![0u8; 40_000];
            std::thread::scope(|s| {
                let p2 = Arc::clone(&pipe);
                let src_ref = &src;
                s.spawn(move || p2.send(src_ref));
                pipe.recv(&mut dst);
            });
            assert_eq!(src, dst, "round {round}");
        }
    }

    #[test]
    fn offload_engine_copies_and_completes_in_order() {
        let eng = OffloadEngine::start();
        let src = pattern(256 << 10);
        let mut dst = vec![0u8; 256 << 10];
        let pending = eng.submit(&src, &mut dst);
        pending.wait();
        assert_eq!(src, dst);
        // Status wrote only after the payload: verified by the data
        // being complete at wait() return. Shutdown reports the bytes.
        assert_eq!(eng.shutdown(), 256 << 10);
    }

    #[test]
    fn offload_engine_overlaps_with_compute() {
        let eng = OffloadEngine::start();
        let src = pattern(1 << 20);
        let mut dst = vec![0u8; 1 << 20];
        let pending = eng.submit(&src, &mut dst);
        // "Compute" while the engine copies.
        let mut acc = 0u64;
        for i in 0..100_000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        assert_ne!(acc, 0);
        pending.wait();
        assert_eq!(src, dst);
    }

    #[test]
    fn offload_multiple_submissions_in_order() {
        let eng = OffloadEngine::start();
        let src1 = vec![1u8; 10_000];
        let src2 = vec![2u8; 10_000];
        let mut d1 = vec![0u8; 10_000];
        let mut d2 = vec![0u8; 10_000];
        let p1 = eng.submit(&src1, &mut d1);
        let p2 = eng.submit(&src2, &mut d2);
        // In-order channel: p2 complete implies p1 complete.
        p2.wait();
        assert!(p1.poll());
        p1.wait();
        assert_eq!(d1, src1);
        assert_eq!(d2, src2);
    }

    #[test]
    fn engine_panic_is_contained_and_waiters_unblock() {
        let eng = OffloadEngine::start();
        let src = pattern(64 << 10);
        let mut dst = vec![0u8; 64 << 10];
        // A copy submitted before the failure completes normally (the
        // poison descriptor is processed in order, after it).
        assert!(eng.submit(&src, &mut dst).wait());
        assert_eq!(src, dst);
        eng.inject_failure();
        // A copy submitted behind the poison never runs: its wait must
        // still return (no strand), reporting the failure.
        let mut dead = vec![0u8; 64 << 10];
        let pending = eng.submit(&src, &mut dead);
        assert!(!pending.wait(), "post-poison copy must report failure");
        assert!(eng.poisoned());
        assert!(dead.iter().all(|&b| b == 0), "dead copy wrote nothing");
        // Shutdown does not re-throw the contained panic.
        assert_eq!(eng.shutdown(), 0);
    }

    #[test]
    fn pending_drop_blocks_until_done() {
        let eng = OffloadEngine::start();
        let src = pattern(512 << 10);
        let mut dst = vec![0u8; 512 << 10];
        {
            let _pending = eng.submit(&src, &mut dst);
            // Dropped without wait(): Drop must block until complete so
            // the borrows never dangle.
        }
        assert_eq!(src, dst);
    }
}
