//! Criterion bench of whole simulated PingPongs — measures simulator
//! wall-clock cost per virtual experiment, per LMT backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nemesis_core::{KnemSelect, LmtSelect, NemesisConfig};
use nemesis_sim::topology::Placement;
use nemesis_sim::MachineConfig;
use nemesis_workloads::imb::pingpong_bench;

fn sim_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_pingpong_256KiB");
    g.sample_size(10);
    for (name, lmt) in [
        ("default", LmtSelect::ShmCopy),
        ("vmsplice", LmtSelect::Vmsplice),
        ("knem", LmtSelect::Knem(KnemSelect::SyncCpu)),
        ("knem_ioat", LmtSelect::Knem(KnemSelect::AsyncIoat)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &lmt, |b, lmt| {
            b.iter(|| {
                pingpong_bench(
                    MachineConfig::xeon_e5345(),
                    NemesisConfig::with_lmt(*lmt),
                    Placement::DifferentSocket,
                    256 << 10,
                    3,
                    1,
                )
            });
        });
    }
    // Before/after for the adaptive pipeliner on the simulated ring:
    // `lmt_chunk_start >= ring_chunk` reproduces the seed's fixed-size
    // chunking.
    g.bench_function("default_fixed_chunk", |b| {
        b.iter(|| {
            let mut cfg = NemesisConfig::with_lmt(LmtSelect::ShmCopy);
            cfg.lmt_chunk_start = cfg.ring_chunk;
            pingpong_bench(
                MachineConfig::xeon_e5345(),
                cfg,
                Placement::DifferentSocket,
                256 << 10,
                3,
                1,
            )
        });
    });
    g.finish();
}

criterion_group!(benches, sim_pingpong);
criterion_main!(benches);
