//! Criterion benches for the real-thread Nemesis queue and cell pool.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nemesis_rt::cellpool::CellPool;
use nemesis_rt::queue::nem_queue;

fn queue_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("nem_queue");
    g.throughput(Throughput::Elements(1));
    g.bench_function("enqueue_dequeue_uncontended", |b| {
        let (tx, mut rx) = nem_queue::<u64>();
        b.iter(|| {
            tx.enqueue(42);
            std::hint::black_box(rx.dequeue().unwrap());
        });
    });
    g.bench_function("enqueue_dequeue_batch_64", |b| {
        let (tx, mut rx) = nem_queue::<u64>();
        b.iter(|| {
            for i in 0..64 {
                tx.enqueue(i);
            }
            for _ in 0..64 {
                std::hint::black_box(rx.dequeue().unwrap());
            }
        });
    });
    g.finish();
}

fn cell_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell_pool");
    g.throughput(Throughput::Elements(1));
    g.bench_function("acquire_release", |b| {
        let pool = CellPool::new(32, 4096);
        b.iter(|| {
            let i = pool.try_acquire().unwrap();
            pool.release(std::hint::black_box(i));
        });
    });
    g.finish();
}

criterion_group!(benches, queue_ops, cell_pool);
criterion_main!(benches);
