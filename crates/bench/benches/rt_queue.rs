//! Criterion benches for the real-thread Nemesis queue and cell pool.
//!
//! The queue enqueues into pooled cache-aligned cells (zero heap
//! allocations per message); `enqueue_dequeue_*` measure the
//! single-message path, `batch_drain_64` the batched consumer
//! (`dequeue_batch`: one chained free-stack CAS per recycle batch)
//! against the same 64 messages drained one at a time — the
//! before/after comparison for the batching change.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nemesis_rt::cellpool::CellPool;
use nemesis_rt::queue::nem_queue;

fn queue_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("nem_queue");
    g.throughput(Throughput::Elements(1));
    g.bench_function("enqueue_dequeue_uncontended", |b| {
        let (tx, mut rx) = nem_queue::<u64>();
        b.iter(|| {
            tx.enqueue(42);
            std::hint::black_box(rx.dequeue().unwrap());
        });
    });
    g.bench_function("enqueue_dequeue_batch_64", |b| {
        let (tx, mut rx) = nem_queue::<u64>();
        b.iter(|| {
            for i in 0..64 {
                tx.enqueue(i);
            }
            for _ in 0..64 {
                std::hint::black_box(rx.dequeue().unwrap());
            }
        });
    });
    g.bench_function("batch_drain_64", |b| {
        let (tx, mut rx) = nem_queue::<u64>();
        b.iter(|| {
            for i in 0..64 {
                tx.enqueue(i);
            }
            let mut sum = 0u64;
            let n = rx.dequeue_batch(64, |v| sum = sum.wrapping_add(v));
            assert_eq!(n, 64);
            std::hint::black_box(sum);
        });
    });
    g.finish();
}

fn queue_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("nem_queue_mpsc4");
    const MSGS: u64 = 40_000;
    g.throughput(Throughput::Elements(MSGS));
    for (name, batch) in [("single_dequeue", 1usize), ("batch_dequeue_32", 32)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let (tx, mut rx) = nem_queue::<u64>();
                std::thread::scope(|s| {
                    for p in 0..4u64 {
                        let tx = tx.clone();
                        s.spawn(move || {
                            for i in 0..MSGS / 4 {
                                tx.enqueue(p << 32 | i);
                            }
                        });
                    }
                    let mut seen = 0u64;
                    while seen < MSGS {
                        let n = rx.dequeue_batch(batch, |v| {
                            std::hint::black_box(v);
                        });
                        seen += n as u64;
                        if n == 0 {
                            std::hint::spin_loop();
                        }
                    }
                });
            });
        });
    }
    g.finish();
}

fn cell_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell_pool");
    g.throughput(Throughput::Elements(1));
    g.bench_function("acquire_release", |b| {
        let pool = CellPool::new(32, 4096);
        b.iter(|| {
            let i = pool.try_acquire().unwrap();
            pool.release(std::hint::black_box(i));
        });
    });
    g.finish();
}

criterion_group!(benches, queue_ops, queue_contended, cell_pool);
criterion_main!(benches);
