//! Criterion benches comparing the three real-memory copy strategies
//! (the host-machine analogue of Figures 4/5: two-copy vs single-copy vs
//! offloaded).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nemesis_rt::copy::{direct_copy, DoubleBufferPipe, OffloadEngine};
use std::sync::Arc;

fn copy_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("copy_engines");
    for size in [64 << 10, 1 << 20, 4 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        let src: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        g.bench_with_input(BenchmarkId::new("direct", size), &size, |b, _| {
            let mut dst = vec![0u8; size];
            b.iter(|| direct_copy(&src, &mut dst));
        });
        // Adaptive chunk schedule (default) vs the seed's fixed 32 KiB
        // chunks — the before/after comparison for the pipelining change.
        g.bench_with_input(BenchmarkId::new("double_buffer", size), &size, |b, _| {
            let pipe = Arc::new(DoubleBufferPipe::new(32 << 10, 2));
            let mut dst = vec![0u8; size];
            b.iter(|| {
                std::thread::scope(|s| {
                    let p2 = Arc::clone(&pipe);
                    let src_ref = &src;
                    s.spawn(move || p2.send(src_ref));
                    pipe.recv(&mut dst);
                });
            });
        });
        g.bench_with_input(
            BenchmarkId::new("double_buffer_fixed_chunk", size),
            &size,
            |b, _| {
                let pipe = Arc::new(DoubleBufferPipe::with_start_chunk(32 << 10, 2, 32 << 10));
                let mut dst = vec![0u8; size];
                b.iter(|| {
                    std::thread::scope(|s| {
                        let p2 = Arc::clone(&pipe);
                        let src_ref = &src;
                        s.spawn(move || p2.send(src_ref));
                        pipe.recv(&mut dst);
                    });
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("offload", size), &size, |b, _| {
            let eng = OffloadEngine::start();
            let mut dst = vec![0u8; size];
            b.iter(|| eng.submit(&src, &mut dst).wait());
        });
    }
    g.finish();
}

criterion_group!(benches, copy_strategies);
criterion_main!(benches);
