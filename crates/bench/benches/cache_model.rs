//! Criterion benches for the simulator's hot path: line-granularity
//! cache-model accesses (these dominate simulation wall time).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nemesis_sim::{AccessKind, Machine, MachineConfig, PhysRange};

fn cache_accesses(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_model");
    let m = Machine::new(MachineConfig::xeon_e5345());
    let buf = m.alloc_phys(1 << 20);
    let r = PhysRange::new(buf, 1 << 20);
    // Warm: everything resident.
    m.access(0, 0, r, AccessKind::Read, 0);
    g.throughput(Throughput::Elements((1 << 20) / 64));
    g.bench_function("warm_read_1MiB", |b| {
        b.iter(|| std::hint::black_box(m.access(0, 0, r, AccessKind::Read, 0)));
    });
    g.bench_function("streaming_write_1MiB_cold", |b| {
        b.iter(|| {
            m.flush_caches();
            std::hint::black_box(m.access(0, 0, r, AccessKind::Write, 0))
        });
    });
    g.bench_function("copy_cost_256KiB", |b| {
        let a = m.alloc_phys(256 << 10);
        let d = m.alloc_phys(256 << 10);
        b.iter(|| {
            std::hint::black_box(m.copy_cost(
                0,
                0,
                PhysRange::new(a, 256 << 10),
                PhysRange::new(d, 256 << 10),
                0,
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, cache_accesses);
criterion_main!(benches);
