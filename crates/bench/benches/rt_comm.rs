//! Criterion benches for the real-thread message-passing runtime
//! ([`nemesis_rt::comm`]): pingpong latency/throughput per LMT strategy
//! and a small alltoall — the host-machine counterpart of the simulated
//! Figures 4/5/7.
//!
//! Sizes are kept modest: this harness must also behave on single-core
//! CI boxes where every handoff is an OS reschedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nemesis_rt::coll::alltoall;
use nemesis_rt::comm::{run_rt, RtLmt};

fn pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt_pingpong");
    g.sample_size(10);
    for &size in &[4 << 10, 256 << 10] {
        g.throughput(Throughput::Bytes(2 * size as u64));
        for lmt in [RtLmt::DoubleBuffer, RtLmt::Direct, RtLmt::Offload] {
            g.bench_with_input(
                BenchmarkId::new(format!("{lmt:?}"), size),
                &size,
                |b, &size| {
                    b.iter(|| {
                        run_rt(2, lmt, |comm| {
                            let data = vec![1u8; size];
                            let mut buf = vec![0u8; size];
                            if comm.rank() == 0 {
                                comm.send(1, 0, &data);
                                comm.recv(Some(1), Some(0), &mut buf);
                            } else {
                                comm.recv(Some(0), Some(0), &mut buf);
                                comm.send(0, 0, &data);
                            }
                        });
                    });
                },
            );
        }
    }
    g.finish();
}

fn alltoall_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt_alltoall");
    g.sample_size(10);
    let n = 4;
    for &size in &[16usize << 10] {
        g.throughput(Throughput::Bytes((n * (n - 1) * size) as u64));
        for lmt in [RtLmt::DoubleBuffer, RtLmt::Direct] {
            g.bench_with_input(
                BenchmarkId::new(format!("{lmt:?}"), size),
                &size,
                |b, &size| {
                    b.iter(|| {
                        run_rt(n, lmt, |comm| {
                            let nn = comm.size();
                            let send = vec![comm.rank() as u8; nn * size];
                            let mut recv = vec![0u8; nn * size];
                            alltoall(comm, &send, &mut recv, size);
                        });
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, pingpong, alltoall_bench);
criterion_main!(benches);
