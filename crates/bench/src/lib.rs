//! # nemesis-bench — experiment harness
//!
//! One binary per table/figure of the paper:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig3` | Figure 3: PingPong, vmsplice vs writev vs default, shared cache / different dies |
//! | `fig4` | Figure 4: PingPong, 4 LMTs, shared 4 MiB L2 |
//! | `fig5` | Figure 5: PingPong, 4 LMTs, no shared cache |
//! | `fig6` | Figure 6: KNEM synchronous vs asynchronous, ± I/OAT |
//! | `fig7` | Figure 7: Alltoall aggregated throughput, 8 processes |
//! | `table1` | Table 1: NAS proxy execution times, 4 LMTs |
//! | `table2` | Table 2: L2 cache misses |
//! | `thresholds` | §3.5: empirical I/OAT crossover vs the `DMAmin` formula |
//! | `crossover_small` | §4.2/§4.4: where KNEM starts beating the default |
//! | `numa_study` | §6: the four LMTs on a Nehalem/NUMA machine (shared L3 vs cross-socket) |
//! | `imb_suite` | §4.4: Sendrecv / Exchange / Bcast / Allgather / Allreduce ("similar behavior for several operations") |
//! | `vector_ablation` | §5: KNEM vectorial buffers vs pack/unpack on strided payloads |
//! | `ablations` | design-choice sweeps: cell size, ring depth, pipe pages, DMA bandwidth |
//! | `all_experiments` | everything above, written to `results/` |
//!
//! Each binary prints a GitHub-markdown table whose rows/series match the
//! paper's figure legends, and (optionally) writes CSV next to it.

pub mod experiments;

use std::fmt::Write as _;
use std::path::Path;

use nemesis_core::{KnemSelect, LmtSelect, NemesisConfig};
use nemesis_sim::topology::Placement;
use nemesis_sim::MachineConfig;
use nemesis_workloads::imb::{alltoall_bench, pingpong_bench};

/// A labelled series of (message size, value) points.
#[derive(Debug, Clone)]
pub struct Series {
    pub label: String,
    pub points: Vec<(u64, f64)>,
}

/// Message sizes for the PingPong figures (64 KiB – 4 MiB, as in the
/// paper's x-axes).
pub const PP_SIZES: [u64; 7] = [
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
];

/// Message sizes for the Alltoall figure (4 KiB – 4 MiB).
pub const A2A_SIZES: [u64; 11] = [
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
];

/// Repetitions per size: fewer for large messages (IMB does the same).
pub fn reps_for(size: u64) -> u32 {
    match size {
        s if s <= 64 << 10 => 20,
        s if s <= 256 << 10 => 10,
        s if s <= (1 << 20) => 6,
        _ => 4,
    }
}

/// Human-readable size label ("64kiB", "1.5MiB" — figure x-axis style).
pub fn size_label(s: u64) -> String {
    if s >= 1 << 20 {
        let mib = s as f64 / (1 << 20) as f64;
        if mib.fract() == 0.0 {
            format!("{mib:.0}MiB")
        } else {
            format!("{mib:.1}MiB")
        }
    } else if s >= 1 << 10 {
        format!("{}kiB", s >> 10)
    } else {
        format!("{s}B")
    }
}

/// Render series as a markdown table (rows = sizes, columns = series).
pub fn render_table(title: &str, ylabel: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {title}\n");
    let _ = writeln!(out, "{ylabel}\n");
    let _ = write!(out, "| Message size |");
    for s in series {
        let _ = write!(out, " {} |", s.label);
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in series {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    let sizes: Vec<u64> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    for (i, sz) in sizes.iter().enumerate() {
        let _ = write!(out, "| {} |", size_label(*sz));
        for s in series {
            let v = s.points.get(i).map(|p| p.1).unwrap_or(f64::NAN);
            if v >= 100.0 {
                let _ = write!(out, " {v:.0} |");
            } else {
                let _ = write!(out, " {v:.1} |");
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render series as CSV (columns: size, then one per series).
pub fn render_csv(series: &[Series]) -> String {
    let mut out = String::from("size_bytes");
    for s in series {
        out.push(',');
        out.push_str(&s.label.replace(',', ";"));
    }
    out.push('\n');
    let sizes: Vec<u64> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    for (i, sz) in sizes.iter().enumerate() {
        let _ = write!(out, "{sz}");
        for s in series {
            let v = s.points.get(i).map(|p| p.1).unwrap_or(f64::NAN);
            let _ = write!(out, ",{v}");
        }
        out.push('\n');
    }
    out
}

/// Write both renderings into `results/` (best effort).
pub fn save_results(name: &str, title: &str, ylabel: &str, series: &[Series]) {
    let table = render_table(title, ylabel, series);
    println!("{table}");
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.md")), &table);
        let _ = std::fs::write(dir.join(format!("{name}.csv")), render_csv(series));
    }
}

/// Sweep a PingPong configuration across `sizes`.
pub fn pingpong_series(
    label: &str,
    mcfg: &MachineConfig,
    lmt: LmtSelect,
    placement: Placement,
    sizes: &[u64],
) -> Series {
    let points = sizes
        .iter()
        .map(|&s| {
            let r = pingpong_bench(
                mcfg.clone(),
                NemesisConfig::with_lmt(lmt),
                placement,
                s,
                reps_for(s),
                2,
            );
            (s, r.throughput_mib_s)
        })
        .collect();
    Series {
        label: label.to_string(),
        points,
    }
}

/// Sweep an Alltoall configuration across `sizes` with `nprocs` ranks.
/// `eager_max` lets experiments lower the LMT activation threshold, as
/// §4.2/§4.4 discuss.
pub fn alltoall_series(
    label: &str,
    mcfg: &MachineConfig,
    lmt: LmtSelect,
    nprocs: usize,
    sizes: &[u64],
    eager_max: u64,
) -> Series {
    let points = sizes
        .iter()
        .map(|&s| {
            let mut cfg = NemesisConfig::with_lmt(lmt);
            cfg.eager_max = eager_max;
            let reps = if s >= 1 << 20 { 2 } else { 3 };
            let r = alltoall_bench(mcfg.clone(), cfg, nprocs, s, reps, 1);
            (s, r.agg_throughput_mib_s)
        })
        .collect();
    Series {
        label: label.to_string(),
        points,
    }
}

/// The four LMT configurations of Figures 4, 5 and 7. "KNEM LMT with
/// I/OAT" uses the asynchronous completion model, which KNEM enables by
/// default whenever I/OAT is used (§4.3).
pub fn four_lmts() -> [(&'static str, LmtSelect); 4] {
    [
        ("default LMT", LmtSelect::ShmCopy),
        ("vmsplice LMT", LmtSelect::Vmsplice),
        ("KNEM LMT", LmtSelect::Knem(KnemSelect::SyncCpu)),
        (
            "KNEM LMT with I/OAT",
            LmtSelect::Knem(KnemSelect::AsyncIoat),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels() {
        assert_eq!(size_label(64 << 10), "64kiB");
        assert_eq!(size_label(4 << 20), "4MiB");
        assert_eq!(size_label(100), "100B");
    }

    #[test]
    fn reps_decrease_with_size() {
        assert!(reps_for(64 << 10) > reps_for(4 << 20));
    }

    #[test]
    fn table_rendering() {
        let s = vec![
            Series {
                label: "a".into(),
                points: vec![(65536, 1000.0), (1 << 20, 2000.0)],
            },
            Series {
                label: "b".into(),
                points: vec![(65536, 1.5), (1 << 20, 2.5)],
            },
        ];
        let t = render_table("T", "MiB/s", &s);
        assert!(t.contains("| 64kiB | 1000 | 1.5 |"));
        assert!(t.contains("| 1MiB | 2000 | 2.5 |"));
        let c = render_csv(&s);
        assert!(c.starts_with("size_bytes,a,b\n65536,1000,1.5\n"));
    }
}
