//! Reusable experiment bodies — one function per paper table/figure.
//! The `fig*`/`table*` binaries are thin wrappers over these, and
//! `all_experiments` runs the lot.

use nemesis_core::{KnemSelect, LmtSelect, NemesisConfig};
use nemesis_sim::topology::Placement;
use nemesis_sim::{ps_to_ms, MachineConfig};
use nemesis_workloads::imb::{alltoall_bench, pingpong_bench};
use nemesis_workloads::nas::{run_nas, NasClass, NasKernel};

use crate::{alltoall_series, four_lmts, pingpong_series, Series, A2A_SIZES, PP_SIZES};

/// Figure 3 series: vmsplice vs writev vs default, two placements.
pub fn fig3_series() -> Vec<Series> {
    let mcfg = MachineConfig::xeon_e5345();
    let configs = [
        (
            "default LMT - Shared Cache",
            LmtSelect::ShmCopy,
            Placement::SharedL2,
        ),
        (
            "vmsplice LMT - Shared Cache",
            LmtSelect::Vmsplice,
            Placement::SharedL2,
        ),
        (
            "vmsplice LMT using writev - Shared Cache",
            LmtSelect::PipeWritev,
            Placement::SharedL2,
        ),
        (
            "default LMT - Different Dies",
            LmtSelect::ShmCopy,
            Placement::SameSocketDifferentDie,
        ),
        (
            "vmsplice LMT - Different Dies",
            LmtSelect::Vmsplice,
            Placement::SameSocketDifferentDie,
        ),
        (
            "vmsplice LMT using writev - Different Dies",
            LmtSelect::PipeWritev,
            Placement::SameSocketDifferentDie,
        ),
    ];
    configs
        .iter()
        .map(|(label, lmt, pl)| pingpong_series(label, &mcfg, *lmt, *pl, &PP_SIZES))
        .collect()
}

/// Figure 4 series: four LMTs, shared L2.
pub fn fig4_series() -> Vec<Series> {
    let mcfg = MachineConfig::xeon_e5345();
    four_lmts()
        .iter()
        .map(|(label, lmt)| pingpong_series(label, &mcfg, *lmt, Placement::SharedL2, &PP_SIZES))
        .collect()
}

/// Figure 5 series: four LMTs, no shared cache.
pub fn fig5_series() -> Vec<Series> {
    let mcfg = MachineConfig::xeon_e5345();
    four_lmts()
        .iter()
        .map(|(label, lmt)| {
            pingpong_series(label, &mcfg, *lmt, Placement::DifferentSocket, &PP_SIZES)
        })
        .collect()
}

/// Figure 6 series: KNEM sync vs async, ± I/OAT.
pub fn fig6_series() -> Vec<Series> {
    let mcfg = MachineConfig::xeon_e5345();
    [
        ("KNEM LMT - synchronous", KnemSelect::SyncCpu),
        ("KNEM LMT - asynchronous", KnemSelect::AsyncKthread),
        ("KNEM LMT - synchronous with I/OAT", KnemSelect::SyncIoat),
        ("KNEM LMT - asynchronous with I/OAT", KnemSelect::AsyncIoat),
    ]
    .iter()
    .map(|(label, sel)| {
        pingpong_series(
            label,
            &mcfg,
            LmtSelect::Knem(*sel),
            Placement::DifferentSocket,
            &PP_SIZES,
        )
    })
    .collect()
}

/// Figure 7 series: Alltoall over 8 processes. Kernel-assisted LMTs use
/// a lowered 8 KiB rendezvous threshold (§4.2 / §4.4).
pub fn fig7_series() -> Vec<Series> {
    let mcfg = MachineConfig::xeon_e5345();
    four_lmts()
        .iter()
        .map(|(label, lmt)| {
            let eager_max = match lmt {
                LmtSelect::ShmCopy => 64 << 10,
                _ => 8 << 10,
            };
            alltoall_series(label, &mcfg, *lmt, 8, &A2A_SIZES, eager_max)
        })
        .collect()
}

/// The four Table-1/Table-2 configurations.
pub fn table_configs() -> [(&'static str, LmtSelect); 4] {
    [
        ("default", LmtSelect::ShmCopy),
        ("vmsplice", LmtSelect::Vmsplice),
        ("KNEM kernel copy", LmtSelect::Knem(KnemSelect::SyncCpu)),
        ("KNEM I/OAT", LmtSelect::Knem(KnemSelect::AsyncIoat)),
    ]
}

/// One Table-1 row: kernel label, four times (virtual ms), speedup %.
pub struct Table1Row {
    pub kernel: &'static str,
    pub times_ms: [f64; 4],
    pub speedup_pct: f64,
}

/// Run the full Table-1 sweep (slow: minutes of host time).
pub fn table1_rows() -> Vec<Table1Row> {
    NasKernel::ALL
        .iter()
        .map(|&k| {
            let mut times = [0.0; 4];
            for (i, (_, lmt)) in table_configs().iter().enumerate() {
                let r = run_nas(
                    MachineConfig::xeon_e5345(),
                    NemesisConfig::with_lmt(*lmt),
                    k,
                    NasClass::B,
                );
                assert!(r.verified, "{} failed verification", k.label());
                times[i] = ps_to_ms(r.time_ps);
            }
            Table1Row {
                kernel: k.label(),
                times_ms: times,
                speedup_pct: (times[0] - times[3]) / times[0] * 100.0,
            }
        })
        .collect()
}

/// One Table-2 row: workload label and L2 misses for the four configs.
pub struct Table2Row {
    pub workload: String,
    pub misses: [u64; 4],
}

/// Run the full Table-2 sweep.
pub fn table2_rows() -> Vec<Table2Row> {
    let mcfg = MachineConfig::xeon_e5345;
    let mut rows = Vec::new();
    for (label, size) in [("64KiB Pingpong", 64 << 10), ("4MiB Pingpong", 4 << 20)] {
        let mut misses = [0u64; 4];
        for (i, (_, lmt)) in table_configs().iter().enumerate() {
            let mut cfg = NemesisConfig::with_lmt(*lmt);
            cfg.eager_max = 32 << 10; // let the 64 KiB point exercise the LMT
            let r = pingpong_bench(mcfg(), cfg, Placement::SameSocketDifferentDie, size, 5, 2);
            misses[i] = r.l2_misses_per_rep;
        }
        rows.push(Table2Row {
            workload: label.into(),
            misses,
        });
    }
    for (label, size) in [("64KiB Alltoall", 64 << 10), ("4MiB Alltoall", 4 << 20)] {
        let mut misses = [0u64; 4];
        for (i, (_, lmt)) in table_configs().iter().enumerate() {
            let mut cfg = NemesisConfig::with_lmt(*lmt);
            cfg.eager_max = 32 << 10;
            let r = alltoall_bench(mcfg(), cfg, 8, size, 2, 1);
            misses[i] = r.l2_misses_per_op;
        }
        rows.push(Table2Row {
            workload: label.into(),
            misses,
        });
    }
    {
        let mut misses = [0u64; 4];
        for (i, (_, lmt)) in table_configs().iter().enumerate() {
            let r = run_nas(
                mcfg(),
                NemesisConfig::with_lmt(*lmt),
                NasKernel::Is8,
                NasClass::B,
            );
            assert!(r.verified);
            misses[i] = r.l2_misses;
        }
        rows.push(Table2Row {
            workload: "is.B.8".into(),
            misses,
        });
    }
    rows
}

/// §6 forward-looking study: the four LMTs on a Nehalem-class machine
/// (private L2s, package-wide 8 MiB L3, per-socket memory controllers).
/// Two placements exist there: same socket (sharing the L3) and
/// different sockets (NUMA). The §4 dichotomy must carry over with the
/// L3 playing the Clovertown L2's role.
pub fn numa_series() -> Vec<Series> {
    let mcfg = MachineConfig::nehalem_x5550();
    let mut out = Vec::new();
    for (label, lmt) in four_lmts() {
        out.push(pingpong_series(
            &format!("{label} - Shared L3"),
            &mcfg,
            lmt,
            Placement::SharedL3,
            &PP_SIZES,
        ));
    }
    for (label, lmt) in four_lmts() {
        out.push(pingpong_series(
            &format!("{label} - Different Sockets (NUMA)"),
            &mcfg,
            lmt,
            Placement::DifferentSocket,
            &PP_SIZES,
        ));
    }
    out
}

/// §3.5 crossover scan: smallest size where async I/OAT beats the sync
/// CPU copy in a PingPong.
pub fn ioat_crossover(mcfg: &MachineConfig, placement: Placement) -> Option<u64> {
    let mut sizes = Vec::new();
    let mut s = 128 << 10;
    while s <= 8 << 20 {
        sizes.push(s);
        sizes.push(s + s / 2);
        s <<= 1;
    }
    for &s in &sizes {
        let cpu = pingpong_bench(
            mcfg.clone(),
            NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::SyncCpu)),
            placement,
            s,
            4,
            2,
        );
        let ioat = pingpong_bench(
            mcfg.clone(),
            NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::AsyncIoat)),
            placement,
            s,
            4,
            2,
        );
        if ioat.throughput_mib_s > cpu.throughput_mib_s {
            return Some(s);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_configs_cover_the_paper_columns() {
        let c = table_configs();
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].0, "default");
        assert_eq!(c[3].0, "KNEM I/OAT");
    }

    /// A minimal smoke run of one figure point per family (fast).
    #[test]
    fn figure_plumbing_smoke() {
        let mcfg = MachineConfig::xeon_e5345();
        let s = pingpong_series(
            "x",
            &mcfg,
            LmtSelect::ShmCopy,
            Placement::SharedL2,
            &[128 << 10],
        );
        assert_eq!(s.points.len(), 1);
        assert!(s.points[0].1 > 0.0);
    }
}
