//! Figure 4: IMB PingPong throughput between 2 processes sharing a 4 MiB
//! L2 cache, for the four LMT configurations.

use nemesis_bench::experiments::fig4_series;
use nemesis_bench::save_results;

fn main() {
    save_results(
        "fig4",
        "Figure 4: IMB Pingpong throughput, 2 processes sharing a 4 MiB L2 cache",
        "Throughput (MiB/s)",
        &fig4_series(),
    );
}
