//! Machine-readable perf baseline: runs the queue, bandwidth, and
//! simulated-cache experiments and writes a `BENCH_*.json` the perf
//! trajectory can be tracked against across PRs.
//!
//! ```text
//! report [--out PATH] [--quick]
//! ```
//!
//! * `--out PATH` — where to write the JSON (default `BENCH_2.json`).
//! * `--quick` — CI smoke mode: tiny repetition counts, same shape.
//!
//! Sections:
//! * `queue_msg_rate` — enqueue+dequeue message rates of the pooled
//!   MPSC queue: uncontended roundtrips, 4-producer contention, and the
//!   batched consumer drain.
//! * `rt_bandwidth_mib_s` — real-thread pingpong bandwidth at 64 B
//!   (inline packet path), 4 KiB (pooled-cell eager path) and 1 MiB
//!   (rendezvous) through every `RtLmtBackend`.
//! * `sim_pingpong_256KiB` — simulated 256 KiB pingpong per LMT
//!   backend: virtual-time throughput and the simulated L2-miss
//!   counters (the paper's Table 2 metric).

use std::fmt::Write as _;
use std::time::Instant;

use nemesis_core::{KnemSelect, LmtSelect, NemesisConfig};
use nemesis_rt::{run_rt, RtLmt, ALL_RT_LMTS};
use nemesis_sim::topology::Placement;
use nemesis_sim::MachineConfig;
use nemesis_workloads::imb::pingpong_bench;
use parking_lot::Mutex;

struct Cfg {
    queue_msgs: u64,
    pp_reps_small: usize,
    pp_reps_large: usize,
    sim_reps: u32,
}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\\\""))
}

/// Uncontended single-producer roundtrip rate (msgs/s).
fn queue_spsc(msgs: u64) -> f64 {
    let (tx, mut rx) = nemesis_rt::queue::nem_queue::<u64>();
    let t = Instant::now();
    for i in 0..msgs {
        tx.enqueue(i);
        std::hint::black_box(rx.dequeue().unwrap());
    }
    msgs as f64 / t.elapsed().as_secs_f64()
}

/// Uncontended rate with the batched consumer (64-message bursts).
fn queue_spsc_batch(msgs: u64) -> f64 {
    let (tx, mut rx) = nemesis_rt::queue::nem_queue::<u64>();
    let t = Instant::now();
    let mut done = 0u64;
    while done < msgs {
        let burst = 64.min(msgs - done);
        for i in 0..burst {
            tx.enqueue(i);
        }
        let mut sum = 0u64;
        rx.dequeue_batch(burst as usize, |v| sum = sum.wrapping_add(v));
        std::hint::black_box(sum);
        done += burst;
    }
    msgs as f64 / t.elapsed().as_secs_f64()
}

/// 4-producer contended throughput (msgs/s), batched consumer.
fn queue_mpsc4(msgs: u64) -> f64 {
    let (tx, mut rx) = nemesis_rt::queue::nem_queue::<u64>();
    let t = Instant::now();
    std::thread::scope(|s| {
        for p in 0..4u64 {
            let tx = tx.clone();
            let per = msgs / 4;
            s.spawn(move || {
                for i in 0..per {
                    tx.enqueue(p << 32 | i);
                }
            });
        }
        let mut seen = 0u64;
        while seen < (msgs / 4) * 4 {
            let n = rx.dequeue_batch(32, |v| {
                std::hint::black_box(v);
            });
            seen += n as u64;
            if n == 0 {
                std::hint::spin_loop();
            }
        }
    });
    msgs as f64 / t.elapsed().as_secs_f64()
}

/// Real-thread pingpong bandwidth (MiB/s) for one backend and size.
fn rt_bandwidth(lmt: RtLmt, size: usize, reps: usize) -> f64 {
    let result = Mutex::new(0f64);
    run_rt(2, lmt, |comm| {
        let data = vec![7u8; size];
        let mut buf = vec![0u8; size];
        if comm.rank() == 0 {
            // Warmup.
            comm.send(1, 0, &data);
            comm.recv(Some(1), Some(0), &mut buf);
            let t = Instant::now();
            for _ in 0..reps {
                comm.send(1, 1, &data);
                comm.recv(Some(1), Some(1), &mut buf);
            }
            let secs = t.elapsed().as_secs_f64();
            let bytes = (2 * reps * size) as f64;
            *result.lock() = bytes / (1 << 20) as f64 / secs;
        } else {
            comm.recv(Some(0), Some(0), &mut buf);
            comm.send(0, 0, &data);
            for _ in 0..reps {
                comm.recv(Some(0), Some(1), &mut buf);
                comm.send(0, 1, &data);
            }
        }
    });
    let bw = *result.lock();
    bw
}

fn rt_lmt_key(lmt: RtLmt) -> &'static str {
    match lmt {
        RtLmt::DoubleBuffer => "double-buffer",
        RtLmt::Direct => "direct",
        RtLmt::Offload => "offload-engine",
    }
}

fn main() {
    let mut out_path = String::from("BENCH_2.json");
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--quick" => quick = true,
            other => panic!("unknown argument {other:?} (expected --out/--quick)"),
        }
    }
    let cfg = if quick {
        Cfg {
            queue_msgs: 200_000,
            pp_reps_small: 500,
            pp_reps_large: 20,
            sim_reps: 2,
        }
    } else {
        Cfg {
            queue_msgs: 2_000_000,
            pp_reps_small: 20_000,
            pp_reps_large: 200,
            sim_reps: 4,
        }
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"issue\": 2,");
    let _ = writeln!(json, "  \"quick\": {quick},");

    // --- queue message rates -------------------------------------------------
    eprintln!("[report] queue message rates ({} msgs)…", cfg.queue_msgs);
    let spsc = queue_spsc(cfg.queue_msgs);
    let spsc_batch = queue_spsc_batch(cfg.queue_msgs);
    let mpsc4 = queue_mpsc4(cfg.queue_msgs);
    let _ = writeln!(json, "  \"queue_msg_rate\": {{");
    let _ = writeln!(json, "    \"spsc_msgs_per_s\": {spsc:.0},");
    let _ = writeln!(
        json,
        "    \"spsc_batch_drain_msgs_per_s\": {spsc_batch:.0},"
    );
    let _ = writeln!(json, "    \"mpsc4_msgs_per_s\": {mpsc4:.0}");
    let _ = writeln!(json, "  }},");

    // --- real-thread bandwidth ----------------------------------------------
    let sizes: [(&str, usize, bool); 3] = [
        ("64B", 64, true),
        ("4KiB", 4 << 10, true),
        ("1MiB", 1 << 20, false),
    ];
    let _ = writeln!(json, "  \"rt_bandwidth_mib_s\": {{");
    for (bi, lmt) in ALL_RT_LMTS.iter().enumerate() {
        eprintln!("[report] rt bandwidth via {:?}…", lmt);
        let _ = writeln!(json, "    {}: {{", quote(rt_lmt_key(*lmt)));
        // The chunk ceiling this backend's adaptive schedule grows to —
        // context for reading the bandwidth numbers across PRs.
        let preferred = nemesis_rt::backend_for(*lmt, 2).preferred_chunk();
        let _ = writeln!(json, "      \"preferred_chunk_bytes\": {preferred},");
        for (si, (label, size, small)) in sizes.iter().enumerate() {
            let reps = if *small {
                cfg.pp_reps_small
            } else {
                cfg.pp_reps_large
            };
            let bw = rt_bandwidth(*lmt, *size, reps);
            let comma = if si + 1 < sizes.len() { "," } else { "" };
            let _ = writeln!(json, "      {}: {bw:.1}{comma}", quote(label));
        }
        let comma = if bi + 1 < ALL_RT_LMTS.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }},");

    // --- simulated pingpong: throughput + L2 misses --------------------------
    let sim_lmts: [(&str, LmtSelect); 4] = [
        ("default LMT", LmtSelect::ShmCopy),
        ("vmsplice LMT", LmtSelect::Vmsplice),
        ("KNEM LMT", LmtSelect::Knem(KnemSelect::SyncCpu)),
        (
            "KNEM LMT with I/OAT",
            LmtSelect::Knem(KnemSelect::AsyncIoat),
        ),
    ];
    let _ = writeln!(json, "  \"sim_pingpong_256KiB\": {{");
    for (i, (label, lmt)) in sim_lmts.iter().enumerate() {
        eprintln!("[report] sim pingpong via {label}…");
        let r = pingpong_bench(
            MachineConfig::xeon_e5345(),
            NemesisConfig::with_lmt(*lmt),
            Placement::DifferentSocket,
            256 << 10,
            cfg.sim_reps,
            1,
        );
        let comma = if i + 1 < sim_lmts.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {}: {{ \"throughput_mib_s\": {:.1}, \"l2_misses_per_rep\": {} }}{comma}",
            quote(label),
            r.throughput_mib_s,
            r.l2_misses_per_rep
        );
    }
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("[report] wrote {out_path}");
}
