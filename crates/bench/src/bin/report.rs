//! Machine-readable perf baseline: runs the queue, bandwidth, and
//! simulated-cache experiments and writes a `BENCH_*.json` the perf
//! trajectory can be tracked against across PRs.
//!
//! ```text
//! report [--out PATH] [--quick] [--scaling-only] [--faults-only] [--copy-only] [--coll-only] [--serve-only]
//! ```
//!
//! * `--out PATH` — where to write the JSON (default `BENCH_10.json`).
//! * `--quick` — CI smoke mode: tiny repetition counts, same shape.
//! * `--scaling-only` — emit only the `rank_scaling` section (the
//!   seconds-scale CI lane for the scale-out acceptance bar).
//! * `--faults-only` — emit only the `fault_recovery` section (the
//!   seconds-scale CI lane for the availability acceptance bar).
//! * `--copy-only` — emit only the `copy_frontier` section (the
//!   seconds-scale CI lane for the raw-copy acceptance bars).
//! * `--coll-only` — emit only the `collective_bandwidth` section (the
//!   seconds-scale CI lane for the learned-collective acceptance bars).
//! * `--serve-only` — emit only the `serving_tail` section (the
//!   seconds-scale CI lane for the request/response tail-latency bars).
//!
//! Every report carries a `machine` header (host LLC size and core
//! count, plus each simulated part's NUMA node count, cache sizes and
//! DMA-channel inventory) and a `compared_against` field naming the
//! newest committed `BENCH_<n>.json` found next to the output — the
//! comparison base is discovered, never hardcoded.
//!
//! Sections (the first four keep the `BENCH_3.json` shape, so the
//! perf trajectory stays comparable across PRs):
//! * `queue_msg_rate` — enqueue+dequeue message rates of the pooled
//!   MPSC queue: uncontended roundtrips, 4-producer contention, and the
//!   batched consumer drain.
//! * `rt_bandwidth_mib_s` — real-thread pingpong bandwidth at 64 B
//!   (inline packet path), 4 KiB (pooled-cell eager path) and 1 MiB
//!   (rendezvous) through every `RtLmtBackend` (now incl. the CMA
//!   analogue).
//! * `sim_pingpong_256KiB` — simulated 256 KiB pingpong per LMT
//!   backend: virtual-time throughput and the simulated L2-miss
//!   counters (the paper's Table 2 metric).
//! * `learned_vs_static` — the tuner subsystem against its static
//!   baselines: the converged per-placement `DMAmin` vs the §3.5
//!   architectural value, the learned chunk sweet spot, and 1 MiB
//!   bandwidth under the learned chunk schedule vs the fixed-chunk
//!   (seed) baseline on both stacks.
//! * `cma_vs_knem` — the module-free single-copy engine against the
//!   kernel-module one at 256 KiB and 1 MiB: simulated throughput and
//!   L2 misses (CMA pays a per-call page walk instead of KNEM's
//!   one-time pin; the numbers show what that deployment convenience
//!   costs).
//! * `striped_scaling` — simulated 1 MiB bandwidth of the striped
//!   meta-backend at 1–4 rails plus the speedup over the single rail
//!   (the acceptance bar: ≥ 1.5× at 2+ rails in the simulated cost
//!   model), with the rt mirror's wall-clock numbers for context.
//! * `learned_backend_vs_dynamic` — the learned backend selector
//!   (`NEMESIS_BACKEND=learned`, a per-(pair, size-class) bandit over
//!   the fixed mechanisms) against the rule-based blended `Dynamic`
//!   policy and the best fixed backend, at 64 B / 4 KiB / 1 MiB on
//!   both simulated parts. The acceptance bar: converged learned
//!   selection ≥ 0.95× the best fixed backend at every size.
//! * `collective_bandwidth` — collectives on the tuned substrate:
//!   alltoall and allgather over 4 ranks at 4 KiB / 1 MiB, the learned
//!   per-(group size, message class) algorithm arm vs both fixed arms
//!   on both parts (bar: learned ≥ 0.95× best fixed), plus the rotated
//!   per-destination 2-rail stripe vs the anchor-only stripe at 1 MiB
//!   alltoall on the Nehalem part (bar: ≥ 1.1×).
//! * `fault_recovery` — the availability story: 1 MiB striped
//!   bandwidth with the KNEM rail dead vs fault-free (the degraded
//!   mode must retain ≥ 0.5× of the fault-free number), plus the
//!   virtual-time recovery latency of a dropped DONE (detection +
//!   capped-backoff retry against the fault-free twin).
//! * `rank_scaling` — the scale-out story: one fixed bursty MMPP
//!   workload (8 active ranks, 8 directed pairs, rendezvous-sized
//!   messages) replayed inside universes declared for 8/64/256 ranks.
//!   Host ns per progress-engine poll must stay flat in the universe
//!   size (256-rank ≤ 1.2× the 8-rank cost) and resident tuner cells
//!   must track touched pairs, not ranks².
//! * `copy_frontier` — the raw-speed story: host store-flavour
//!   bandwidth (temporal SSE vs streaming NT SSE vs memcpy) on a
//!   working set twice the LLC (bar: NT ≥ 1.2× temporal SSE);
//!   simulated CMA over 2 MiB huge-page windows vs 4 KiB pages at
//!   1 MiB (bar: ≥ 1.05×); simulated striped scaling on the
//!   two-DMA-channel Nehalem part (bar: striped-3 ≥ 1.1× striped-2);
//!   and the rt striped rails under the available-parallelism cap.
//! * `serving_tail` — what a *user* of the stack feels: the serving
//!   facade (`nemesis-serve`) replays open-loop MMPP traffic against
//!   worker ranks across an offered-load sweep, reporting p50/p99/p999
//!   enqueue→response latency, the achieved-vs-offered saturation curve
//!   with its knee, and a degraded-mode cell (one worker stalled via
//!   `NEMESIS_FAULT_PLAN`; bar: p99 at 50% of knee load ≤ 3× the
//!   fault-free p99).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use nemesis_core::{
    BackendSelect, ChunkScheduleSelect, CollAlgSelect, FaultPlan, KnemSelect, LmtSelect, Nemesis,
    NemesisConfig, ThresholdSelect,
};
use nemesis_kernel::Os;
use nemesis_rt::{
    run_rt, run_rt_cfg, RtChunkScheduleSelect, RtConfig, RtLmt, RtTuner, ALL_RT_LMTS,
};
use nemesis_serve::{run_service, ServeConfig, ServeReport};
use nemesis_sim::topology::Placement;
use nemesis_sim::{run_simulation, Machine, MachineConfig};
use nemesis_workloads::imb::pingpong_bench;
use nemesis_workloads::{alltoall_bench, replay_on, suite_bench, SuiteBench, Trace};
use parking_lot::Mutex;

struct Cfg {
    queue_msgs: u64,
    pp_reps_small: usize,
    pp_reps_large: usize,
    sim_reps: u32,
}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\\\""))
}

/// Uncontended single-producer roundtrip rate (msgs/s).
fn queue_spsc(msgs: u64) -> f64 {
    let (tx, mut rx) = nemesis_rt::queue::nem_queue::<u64>();
    let t = Instant::now();
    for i in 0..msgs {
        tx.enqueue(i);
        std::hint::black_box(rx.dequeue().unwrap());
    }
    msgs as f64 / t.elapsed().as_secs_f64()
}

/// Uncontended rate with the batched consumer (64-message bursts).
fn queue_spsc_batch(msgs: u64) -> f64 {
    let (tx, mut rx) = nemesis_rt::queue::nem_queue::<u64>();
    let t = Instant::now();
    let mut done = 0u64;
    while done < msgs {
        let burst = 64.min(msgs - done);
        for i in 0..burst {
            tx.enqueue(i);
        }
        let mut sum = 0u64;
        rx.dequeue_batch(burst as usize, |v| sum = sum.wrapping_add(v));
        std::hint::black_box(sum);
        done += burst;
    }
    msgs as f64 / t.elapsed().as_secs_f64()
}

/// 4-producer contended throughput (msgs/s), batched consumer.
fn queue_mpsc4(msgs: u64) -> f64 {
    let (tx, mut rx) = nemesis_rt::queue::nem_queue::<u64>();
    let t = Instant::now();
    std::thread::scope(|s| {
        for p in 0..4u64 {
            let tx = tx.clone();
            let per = msgs / 4;
            s.spawn(move || {
                for i in 0..per {
                    tx.enqueue(p << 32 | i);
                }
            });
        }
        let mut seen = 0u64;
        while seen < (msgs / 4) * 4 {
            let n = rx.dequeue_batch(32, |v| {
                std::hint::black_box(v);
            });
            seen += n as u64;
            if n == 0 {
                std::hint::spin_loop();
            }
        }
    });
    msgs as f64 / t.elapsed().as_secs_f64()
}

/// Real-thread pingpong bandwidth (MiB/s) for one backend and size.
fn rt_bandwidth(lmt: RtLmt, size: usize, reps: usize) -> f64 {
    let result = Mutex::new(0f64);
    run_rt(2, lmt, |comm| {
        let data = vec![7u8; size];
        let mut buf = vec![0u8; size];
        if comm.rank() == 0 {
            // Warmup.
            comm.send(1, 0, &data);
            comm.recv(Some(1), Some(0), &mut buf);
            let t = Instant::now();
            for _ in 0..reps {
                comm.send(1, 1, &data);
                comm.recv(Some(1), Some(1), &mut buf);
            }
            let secs = t.elapsed().as_secs_f64();
            let bytes = (2 * reps * size) as f64;
            *result.lock() = bytes / (1 << 20) as f64 / secs;
        } else {
            comm.recv(Some(0), Some(0), &mut buf);
            comm.send(0, 0, &data);
            for _ in 0..reps {
                comm.recv(Some(0), Some(1), &mut buf);
                comm.send(0, 1, &data);
            }
        }
    });
    let bw = *result.lock();
    bw
}

/// Percentage delta, snapped to exactly 0.0 inside the printed
/// resolution so a tie never renders as "-0.0".
fn delta_pct(base: f64, new: f64) -> f64 {
    let d = (new - base) / base * 100.0;
    if d.abs() < 0.05 {
        0.0
    } else {
        d
    }
}

fn rt_lmt_key(lmt: RtLmt) -> &'static str {
    match lmt {
        RtLmt::DoubleBuffer => "double-buffer",
        RtLmt::Direct => "direct",
        RtLmt::Offload => "offload-engine",
        RtLmt::Cma => "cma",
        RtLmt::Striped(1) => "striped-1",
        RtLmt::Striped(2) => "striped-2",
        RtLmt::Striped(3) => "striped-3",
        RtLmt::Striped(_) => "striped-4",
        RtLmt::Learned => "learned",
    }
}

/// Real-thread pingpong bandwidth (MiB/s) under an explicit config,
/// with `warmup` untimed roundtrips (the learned schedule converges
/// during warmup when `cfg` carries a tuner).
fn rt_bandwidth_cfg(lmt: RtLmt, size: usize, reps: usize, warmup: usize, cfg: &RtConfig) -> f64 {
    let result = Mutex::new(0f64);
    run_rt_cfg(2, lmt, cfg.clone(), |comm| {
        let data = vec![7u8; size];
        let mut buf = vec![0u8; size];
        if comm.rank() == 0 {
            for _ in 0..warmup {
                comm.send(1, 0, &data);
                comm.recv(Some(1), Some(0), &mut buf);
            }
            let t = Instant::now();
            for _ in 0..reps {
                comm.send(1, 1, &data);
                comm.recv(Some(1), Some(1), &mut buf);
            }
            let secs = t.elapsed().as_secs_f64();
            *result.lock() = (2 * reps * size) as f64 / (1 << 20) as f64 / secs;
        } else {
            for _ in 0..warmup {
                comm.recv(Some(0), Some(0), &mut buf);
                comm.send(0, 0, &data);
            }
            for _ in 0..reps {
                comm.recv(Some(0), Some(1), &mut buf);
                comm.send(0, 1, &data);
            }
        }
    });
    let bw = *result.lock();
    bw
}

/// Drive a seeded per-size-phase pingpong sweep through KNEM `Auto`
/// with the learned threshold on the paper's Xeon E5345, and return
/// (learned `DMAmin`, architectural `DMAmin`) for the placement's
/// pair. The architectural reference is §3.5's process-aware variant:
/// 2 sharers for a cache-sharing pair, 1 (each process has its own
/// cache, threshold doubles) otherwise.
fn sim_threshold_converge(placement: Placement, reps: usize) -> (u64, u64) {
    let mcfg = MachineConfig::xeon_e5345();
    let sharers = if placement == Placement::SharedL2 {
        2
    } else {
        1
    };
    let arch = mcfg.dma_min_for_sharers(sharers);
    let (a, b) = mcfg.topology.pair_for(placement).expect("placement");
    let cfg = NemesisConfig {
        threshold: ThresholdSelect::Learned,
        ..NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::Auto))
    };
    let machine = Arc::new(Machine::new(mcfg));
    let os = Arc::new(Os::new(Arc::clone(&machine)));
    let nem = Nemesis::new(Arc::clone(&os), 2, cfg);
    let nem2 = Arc::clone(&nem);
    run_simulation(machine, &[a, b], move |p| {
        let comm = nem2.attach(p);
        let os = comm.os();
        let max = 8 << 20;
        let sbuf = os.alloc(comm.rank(), max);
        let rbuf = os.alloc(comm.rank(), max);
        for (i, s) in [256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20]
            .into_iter()
            .enumerate()
        {
            for rep in 0..reps {
                let tag = (i * 1000 + rep) as i32;
                if comm.rank() == 0 {
                    comm.send(1, tag, sbuf, 0, s);
                    comm.recv(Some(1), Some(tag), rbuf, 0, s);
                } else {
                    comm.recv(Some(0), Some(tag), rbuf, 0, s);
                    comm.send(0, tag, sbuf, 0, s);
                }
            }
        }
    });
    let learned = nem.policy().tuner().expect("tuner").snapshot(0, 1).dma_min;
    (learned, arch)
}

/// Learned chunk sweet spot of the shm ring for a placement's pair
/// (pingpong under the learned schedule, then read the tuner).
fn sim_chunk_converge(placement: Placement, reps: usize) -> u64 {
    let mcfg = MachineConfig::xeon_e5345();
    let (a, b) = mcfg.topology.pair_for(placement).expect("placement");
    let cfg = NemesisConfig {
        chunk_schedule: ChunkScheduleSelect::Learned,
        ..NemesisConfig::with_lmt(LmtSelect::ShmCopy)
    };
    let machine = Arc::new(Machine::new(mcfg));
    let os = Arc::new(Os::new(Arc::clone(&machine)));
    let nem = Nemesis::new(Arc::clone(&os), 2, cfg);
    let nem2 = Arc::clone(&nem);
    run_simulation(machine, &[a, b], move |p| {
        let comm = nem2.attach(p);
        let os = comm.os();
        let s = 1 << 20;
        let sbuf = os.alloc(comm.rank(), s);
        let rbuf = os.alloc(comm.rank(), s);
        for rep in 0..reps {
            let tag = rep as i32;
            if comm.rank() == 0 {
                comm.send(1, tag, sbuf, 0, s);
                comm.recv(Some(1), Some(tag), rbuf, 0, s);
            } else {
                comm.recv(Some(0), Some(tag), rbuf, 0, s);
                comm.send(0, tag, sbuf, 0, s);
            }
        }
    });
    nem.policy().tuner().expect("tuner").snapshot(0, 1).chunk
}

/// Simulated 1 MiB shm-ring pingpong bandwidth under a chunk schedule.
fn sim_pingpong_schedule(placement: Placement, schedule: ChunkScheduleSelect, reps: u32) -> f64 {
    let cfg = NemesisConfig {
        chunk_schedule: schedule,
        ..NemesisConfig::with_lmt(LmtSelect::ShmCopy)
    };
    pingpong_bench(
        MachineConfig::xeon_e5345(),
        cfg,
        placement,
        1 << 20,
        reps,
        // Warmup lets the learned schedule converge before timing.
        reps.max(2),
    )
    .throughput_mib_s
}

/// Simulated pingpong through one backend at one size (cross-socket
/// pair — the placement where single-copy engines matter most).
fn sim_pingpong(lmt: LmtSelect, size: u64, reps: u32) -> nemesis_workloads::imb::PingpongResult {
    pingpong_bench(
        MachineConfig::xeon_e5345(),
        NemesisConfig::with_lmt(lmt),
        Placement::DifferentSocket,
        size,
        reps,
        1,
    )
}

/// Simulated striped 1 MiB pingpong on `mcfg` under the learned policy
/// (warm-up roundtrips converge the per-rail bandwidth EWMAs, so the
/// span split is bandwidth-weighted — the equal split starves the DMA
/// rail).
fn sim_striped(mcfg: MachineConfig, rails: u8, reps: u32) -> f64 {
    let cfg = NemesisConfig {
        threshold: ThresholdSelect::Learned,
        ..NemesisConfig::with_lmt(LmtSelect::Striped { rails })
    };
    pingpong_bench(mcfg, cfg, Placement::DifferentSocket, 1 << 20, reps, 6).throughput_mib_s
}

/// Simulated pingpong bandwidth under an explicit config/machine pair
/// (cross-socket placement, with warmup roundtrips — the learned
/// selector converges during warmup).
fn sim_pingpong_cfg(
    mcfg: MachineConfig,
    cfg: NemesisConfig,
    size: u64,
    reps: u32,
    warm: u32,
) -> f64 {
    pingpong_bench(mcfg, cfg, Placement::DifferentSocket, size, reps, warm).throughput_mib_s
}

/// One point of the rank-scaling sweep: a fixed bursty MMPP workload —
/// 8 active ranks forming 8 directed pairs, 256 KiB (rendezvous)
/// messages — replayed inside a universe declared for `universe` ranks
/// under the learned threshold/chunk policy. Everything except the
/// universe size is held constant, so any growth in the returned
/// (host ns per progress poll, polls, resident tuner cells) is
/// scale-out cost: the doorbell-gated engine and lazy tuner should
/// keep the first flat and the last at touched-pairs.
fn rank_scaling_probe(universe: usize, steps: u32) -> (f64, u64, usize) {
    let pairs: Vec<(usize, usize)> = (0..4)
        .flat_map(|k| [(2 * k, 2 * k + 1), (2 * k + 1, 2 * k)])
        .collect();
    let trace = Trace::mmpp(8, &pairs, steps, 256 << 10, 0.15, 0.25, 1.2, 17);
    let machine = Arc::new(Machine::new(MachineConfig::xeon_e5345()));
    let os = Arc::new(Os::new(Arc::clone(&machine)));
    let cfg = NemesisConfig {
        threshold: ThresholdSelect::Learned,
        chunk_schedule: ChunkScheduleSelect::Learned,
        ..NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::Auto))
    };
    let nem = Nemesis::new(os, universe, cfg);
    let placements: Vec<usize> = (0..8).collect();
    let t0 = Instant::now();
    let (_, polls) = replay_on(Arc::clone(&machine), &nem, &placements, &trace);
    let host_ns = t0.elapsed().as_nanos() as f64;
    let resident = nem.policy().resident_pairs().unwrap_or(0);
    (host_ns / polls.max(1) as f64, polls, resident)
}

/// Virtual-time elapsed (ps) on rank 0 for `reps` timed pingpongs of
/// `size` under an optional fault plan, after `warm` untimed
/// roundtrips. The warmup absorbs one-shot faults (a rail abort plus
/// its recovery), so the timed reps measure the degraded steady state;
/// with `warm == 0` the fault's detection and retry cost lands inside
/// the timed window instead.
fn sim_fault_elapsed(lmt: LmtSelect, plan: Option<&str>, size: u64, reps: u32, warm: u32) -> u64 {
    let mut cfg = NemesisConfig::with_lmt(lmt);
    cfg.fault_plan = plan.map(|p| FaultPlan::parse(p).expect("fault plan"));
    cfg.retry_deadline_ps = 2_000_000_000; // 2 ms sim: bound the recovery wait
    let mcfg = MachineConfig::xeon_e5345();
    let (a, b) = mcfg
        .topology
        .pair_for(Placement::DifferentSocket)
        .expect("pair");
    let machine = Arc::new(Machine::new(mcfg));
    let os = Arc::new(Os::new(Arc::clone(&machine)));
    let nem = Nemesis::new(os, 2, cfg);
    let elapsed = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let e2 = Arc::clone(&elapsed);
    run_simulation(machine, &[a, b], move |p| {
        let comm = nem.attach(p);
        let os = comm.os();
        let sbuf = os.alloc(comm.rank(), size);
        let rbuf = os.alloc(comm.rank(), size);
        let mut t0 = comm.proc().now();
        for rep in 0..(warm + reps) {
            if rep == warm {
                t0 = comm.proc().now();
            }
            let tag = rep as i32;
            if comm.rank() == 0 {
                comm.send(1, tag, sbuf, 0, size);
                comm.recv(Some(1), Some(tag), rbuf, 0, size);
            } else {
                comm.recv(Some(0), Some(tag), rbuf, 0, size);
                comm.send(0, tag, sbuf, 0, size);
            }
        }
        if comm.rank() == 0 {
            e2.store(comm.proc().now() - t0, std::sync::atomic::Ordering::Relaxed);
        }
    });
    elapsed.load(std::sync::atomic::Ordering::Relaxed)
}

/// The `fault_recovery` section. Two experiments, both in virtual
/// time so the numbers are deterministic:
/// * degraded-mode bandwidth — a 2-rail stripe whose KNEM rail aborts
///   during warmup, timed anchor-only against the fault-free twin
///   (the acceptance bar: retention ≥ 0.5);
/// * recovery latency — one rendezvous whose DONE is dropped; the
///   sender re-sends after the retry deadline, and the delta against
///   the fault-free twin is the detection + retry cost.
fn emit_fault_recovery(json: &mut String, quick: bool, last: bool) {
    let reps = if quick { 2 } else { 4 };
    let size = 1u64 << 20;
    eprintln!("[report] fault recovery: degraded striped bandwidth…");
    let striped = LmtSelect::Striped { rails: 2 };
    let free_ps = sim_fault_elapsed(striped, None, size, reps, 1);
    let degraded_ps =
        sim_fault_elapsed(striped, Some("rail-fail:rail=knem,times=1"), size, reps, 1);
    let to_mib_s =
        |ps: u64| (2 * reps as u64 * size) as f64 / (1 << 20) as f64 / (ps as f64 / 1e12);
    let free_bw = to_mib_s(free_ps);
    let degraded_bw = to_mib_s(degraded_ps);
    eprintln!("[report] fault recovery: dropped-DONE latency…");
    let clean_ps = sim_fault_elapsed(LmtSelect::Cma, None, size, 1, 0);
    let dropped_ps = sim_fault_elapsed(LmtSelect::Cma, Some("drop-done:count=1"), size, 1, 0);
    let recovery_us = dropped_ps.saturating_sub(clean_ps) as f64 / 1e6;
    let _ = writeln!(json, "  \"fault_recovery\": {{");
    let _ = writeln!(json, "    \"striped_2rail_1MiB_mib_s\": {{");
    let _ = writeln!(json, "      \"fault_free\": {free_bw:.1},");
    let _ = writeln!(json, "      \"knem_rail_failed\": {degraded_bw:.1},");
    let _ = writeln!(json, "      \"retention\": {:.3}", degraded_bw / free_bw);
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"dropped_done_1MiB\": {{");
    let _ = writeln!(
        json,
        "      \"fault_free_us\": {:.1},",
        clean_ps as f64 / 1e6
    );
    let _ = writeln!(
        json,
        "      \"with_dropped_done_us\": {:.1},",
        dropped_ps as f64 / 1e6
    );
    let _ = writeln!(json, "      \"recovery_latency_us\": {recovery_us:.1},");
    let _ = writeln!(json, "      \"retry_deadline_ms\": 2.0");
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}{}", if last { "" } else { "," });
}

/// The `collective_bandwidth` section: collectives as first-class
/// consumers of the tuner. Two experiments, both in virtual time:
/// * learned algorithm selection — alltoall and allgather over 4 ranks
///   at 4 KiB (eager phases) and 1 MiB (rendezvous phases), the learned
///   per-(group size, message class) arm against both fixed arms on
///   both simulated parts (the acceptance bar: learned ≥ 0.95× the
///   best fixed arm everywhere);
/// * striped per-destination rail sets — 1 MiB alltoall on the
///   two-DMA-channel Nehalem part, the rotated 2-rail stripe against
///   the anchor-only degenerate stripe (the bar: ≥ 1.1×; concurrent
///   transfers open on disjoint secondary rails instead of contending
///   for one).
fn emit_collective_bandwidth(json: &mut String, quick: bool, last: bool) {
    let nprocs = 4usize;
    let (reps, warm) = if quick { (4u32, 12u32) } else { (12, 32) };
    type MachinePick = (&'static str, fn() -> MachineConfig);
    let machines: [MachinePick; 2] = [
        ("e5345", MachineConfig::xeon_e5345),
        ("x5550", MachineConfig::nehalem_x5550),
    ];
    let sizes: [(&str, u64); 2] = [("4KiB", 4 << 10), ("1MiB", 1 << 20)];
    let arms: [(&str, CollAlgSelect); 2] = [
        ("arm0", CollAlgSelect::Fixed),
        ("arm1", CollAlgSelect::Alternate),
    ];
    let _ = writeln!(json, "  \"collective_bandwidth\": {{");
    let _ = writeln!(json, "    \"nprocs\": {nprocs},");
    let _ = writeln!(json, "    \"learned_vs_best_fixed\": {{");
    for (mi, (mkey, mcfg)) in machines.iter().enumerate() {
        let _ = writeln!(json, "      {}: {{", quote(mkey));
        for (oi, op) in ["alltoall", "allgather"].iter().enumerate() {
            let _ = writeln!(json, "        {}: {{", quote(op));
            for (si, (skey, size)) in sizes.iter().enumerate() {
                eprintln!("[report] collective {op} on {mkey} at {skey}…");
                let bw_of = |alg: CollAlgSelect, w: u32| -> f64 {
                    let ncfg = NemesisConfig {
                        coll_alg: alg,
                        ..NemesisConfig::default()
                    };
                    if *op == "alltoall" {
                        alltoall_bench(mcfg(), ncfg, nprocs, *size, reps, w).agg_throughput_mib_s
                    } else {
                        suite_bench(mcfg(), ncfg, SuiteBench::Allgather, nprocs, *size, reps, w)
                            .agg_throughput_mib_s
                    }
                };
                let mut best_fixed = 0f64;
                let mut best_label = "";
                for (label, alg) in arms {
                    let bw = bw_of(alg, 2);
                    if bw > best_fixed {
                        best_fixed = bw;
                        best_label = label;
                    }
                }
                // The long warmup lets the bandit's initial sweep and
                // first probes land outside the timed window.
                let learned = bw_of(CollAlgSelect::Learned, warm);
                let comma = if si + 1 < sizes.len() { "," } else { "" };
                let _ = writeln!(
                    json,
                    "          {}: {{ \"best_fixed\": {}, \"best_fixed_mib_s\": {best_fixed:.1}, \
                     \"learned_mib_s\": {learned:.1}, \"learned_over_best_fixed\": {:.3} }}{comma}",
                    quote(skey),
                    quote(best_label),
                    learned / best_fixed
                );
            }
            let comma = if oi == 0 { "," } else { "" };
            let _ = writeln!(json, "        }}{comma}");
        }
        let comma = if mi + 1 < machines.len() { "," } else { "" };
        let _ = writeln!(json, "      }}{comma}");
    }
    let _ = writeln!(json, "    }},");
    eprintln!("[report] collective striped rail rotation on x5550…");
    let striped_of = |rails: u8| -> f64 {
        let ncfg = NemesisConfig::with_lmt(LmtSelect::Striped { rails });
        alltoall_bench(
            MachineConfig::nehalem_x5550(),
            ncfg,
            nprocs,
            1 << 20,
            reps,
            2,
        )
        .agg_throughput_mib_s
    };
    let anchor_only = striped_of(1);
    let rotated = striped_of(2);
    let _ = writeln!(json, "    \"striped_rotation_1MiB_alltoall_x5550\": {{");
    let _ = writeln!(json, "      \"anchor_only_mib_s\": {anchor_only:.1},");
    let _ = writeln!(json, "      \"striped_2rail_mib_s\": {rotated:.1},");
    let _ = writeln!(
        json,
        "      \"speedup_over_anchor_only\": {:.2}",
        rotated / anchor_only
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}{}", if last { "" } else { "," });
}

/// One serving run at the given per-client MMPP ON-rate. The worker
/// pool is 3+2 on purpose: this host has one core, so the interesting
/// contention is scheduling, not parallel copy bandwidth — the sweep's
/// job is the *shape* of the saturation curve, and sleep-based
/// synthetic service gives a capacity ceiling independent of how the
/// kernel timeslices copy loops. Three workers (not two) so the
/// degraded-mode cell measures the health machine, not arithmetic:
/// with two, stalling one at half-knee load puts the survivor at
/// ~100% utilization and the queue it grows — not detection latency —
/// sets the degraded tail.
fn serve_run(rate_on: f64, steps: u32, plan: Option<&str>) -> ServeReport {
    // 100 µs steps, ON 75% of the time in expectation (p_on/(p_on+p_off)),
    // so offered ≈ clients · 0.75 · rate_on / 100 µs.
    let mut cfg = ServeConfig::with_mmpp(3, 2, steps, 100_000, 0.6, 0.2, rate_on, 0xBEEF);
    // ~60 µs synthetic service (sleep-based: does not burn the core the
    // clients need) → a capacity knee well inside the sweep range.
    cfg.service_ns = 60_000;
    // Detection latency is the degraded-mode tail: a request caught by
    // a stall eats ~suspect_after before it is struck and re-routed, so
    // this sits just above the healthy half-knee p99 (~0.7 ms) — tight
    // enough that a re-route costs ~2× the healthy tail, loose enough
    // that ordinary jitter does not strike healthy workers.
    cfg.suspect_after_ns = 1_000_000;
    cfg.holdoff_ns = 8_000_000;
    cfg.drain_timeout_ns = 2_000_000_000;
    cfg.fault_plan = plan.map(|s| FaultPlan::parse(s).expect("valid fault plan"));
    // Shift every arrival past the worker/client thread-spawn
    // transient: the first ~2 ms of a run measure scheduler startup,
    // not the service, and with percentile populations in the low
    // thousands that transient alone is p99-visible.
    const WARMUP_NS: u64 = 5_000_000;
    for a in &mut cfg.arrivals {
        for t in a.iter_mut() {
            *t += WARMUP_NS;
        }
    }
    cfg.span_ns += WARMUP_NS;
    run_service(&cfg)
}

fn emit_serve_cell(json: &mut String, r: &ServeReport, extra_degraded: bool, indent: &str) {
    let us = |q: f64| r.hist.percentile(q) as f64 / 1e3;
    let _ = writeln!(json, "{indent}\"offered_rps\": {:.0},", r.offered_rps());
    let _ = writeln!(json, "{indent}\"achieved_rps\": {:.0},", r.achieved_rps());
    let _ = writeln!(json, "{indent}\"offered\": {},", r.offered);
    let _ = writeln!(json, "{indent}\"completed\": {},", r.completed);
    let _ = writeln!(json, "{indent}\"shed\": {},", r.shed);
    if extra_degraded {
        let _ = writeln!(json, "{indent}\"rerouted\": {},", r.rerouted);
        let _ = writeln!(json, "{indent}\"quarantines\": {},", r.quarantines);
        let _ = writeln!(json, "{indent}\"abandoned\": {},", r.abandoned);
    }
    let _ = writeln!(json, "{indent}\"p50_us\": {:.1},", us(0.50));
    let _ = writeln!(json, "{indent}\"p99_us\": {:.1},", us(0.99));
    let _ = writeln!(json, "{indent}\"p999_us\": {:.1}", us(0.999));
}

/// The `serving_tail` section: the request/response facade under an
/// offered-load sweep (open-loop MMPP, 3 workers + 2 clients), the
/// saturation knee, and the degraded-mode cell — the same traffic at
/// 50% of the knee load with one worker stalled through the
/// `NEMESIS_FAULT_PLAN` environment path. The acceptance bars: ≥ 4
/// sweep points with a knee identified, and degraded p99 ≤ 3× the
/// fault-free p99 at half-knee load.
fn emit_serving_tail(json: &mut String, quick: bool, last: bool) {
    // Full mode runs a 400 ms trace per cell: percentiles over ~3k
    // requests at the knee instead of ~300 — a p99 over 300 samples is
    // a 3-sample tail and flaps run-to-run on a one-core host. The
    // trace length also sets where the degraded-mode stall lands in
    // the distribution: its blast radius is a fixed handful of
    // requests (the stall is 10 ms regardless of trace length), so a
    // long trace keeps it out of p99 and visible in p999 — which is
    // the story a health machine with ~1 ms detection should tell.
    let steps = if quick { 150 } else { 4000 };
    // Doubling offered load per point: ~1.8k → ~58k rps total. The
    // grid is sized to the *sustained* capacity of the sleep-based
    // service on a one-core host (timer slack and scheduling make the
    // effective per-request cost several times the nominal 60 µs):
    // short traces absorb far more on queue elasticity alone, a
    // 200 ms trace saturates honestly, so the knee sits mid-grid with
    // visibly flattened achieved throughput above it.
    let rates: [f64; 6] = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0];
    let _ = writeln!(json, "  \"serving_tail\": {{");
    let _ = writeln!(json, "    \"workers\": 3,");
    let _ = writeln!(json, "    \"clients\": 2,");
    let _ = writeln!(json, "    \"service_us\": 60,");
    let _ = writeln!(json, "    \"open_loop\": true,");
    let _ = writeln!(json, "    \"offered_sweep\": [");
    let mut sweep: Vec<(f64, ServeReport)> = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        eprintln!(
            "[report] serving tail, sweep point {} of {}…",
            i + 1,
            rates.len()
        );
        let r = serve_run(rate, steps, None);
        let _ = writeln!(json, "      {{");
        emit_serve_cell(json, &r, false, "        ");
        let comma = if i + 1 < rates.len() { "," } else { "" };
        let _ = writeln!(json, "      }}{comma}");
        sweep.push((rate, r));
    }
    let _ = writeln!(json, "    ],");
    // The knee: the highest offered point the service still absorbs —
    // achieved ≥ 90% of offered with nothing shed or abandoned. Beyond
    // it the achieved curve flattens while offered keeps climbing.
    let knee_idx = sweep
        .iter()
        .rposition(|(_, r)| r.shed + r.abandoned == 0 && r.achieved_rps() >= 0.90 * r.offered_rps())
        .unwrap_or(0);
    let (knee_rate, knee_report) = &sweep[knee_idx];
    let _ = writeln!(json, "    \"knee\": {{");
    let _ = writeln!(
        json,
        "      \"offered_rps\": {:.0},",
        knee_report.offered_rps()
    );
    let _ = writeln!(
        json,
        "      \"achieved_rps\": {:.0}",
        knee_report.achieved_rps()
    );
    let _ = writeln!(json, "    }},");
    // Degraded mode at 50% of the knee load: worker 0 goes dark for
    // 10 ms mid-trace, injected through NEMESIS_FAULT_PLAN so the env
    // path itself is exercised. The health machine must strike it and
    // re-route; the bar is tail retention, not zero impact. This pair
    // runs a 5× longer trace than the sweep: at light load p99 is set
    // by multi-ms scheduler-jitter windows that strike a 400 ms trace
    // zero or one times — a coin flip between the two cells that can
    // swing the ratio 0.3×–6× — while a 2 s trace samples many such
    // windows in *both* cells, making each p99 a stable estimate of
    // the jitter-inclusive distribution. The stall's own blast radius
    // is a fixed handful of requests either way.
    let plan = "stall@10ms:rank=0,for=10ms";
    let deg_steps = if quick { 150 } else { 5 * steps };
    eprintln!("[report] serving tail, degraded-mode cell (fault-free twin)…");
    let free = serve_run(knee_rate * 0.5, deg_steps, None);
    eprintln!("[report] serving tail, degraded-mode cell (one rank stalled)…");
    std::env::set_var("NEMESIS_FAULT_PLAN", plan);
    let degraded = serve_run(knee_rate * 0.5, deg_steps, None);
    std::env::remove_var("NEMESIS_FAULT_PLAN");
    let _ = writeln!(json, "    \"degraded_mode\": {{");
    let _ = writeln!(json, "      \"fault_plan\": {},", quote(plan));
    let _ = writeln!(json, "      \"fault_free\": {{");
    emit_serve_cell(json, &free, false, "        ");
    let _ = writeln!(json, "      }},");
    let _ = writeln!(json, "      \"one_rank_stalled\": {{");
    emit_serve_cell(json, &degraded, true, "        ");
    let _ = writeln!(json, "      }},");
    let p99_ratio =
        degraded.hist.percentile(0.99) as f64 / free.hist.percentile(0.99).max(1) as f64;
    let _ = writeln!(
        json,
        "      \"p99_degraded_over_fault_free\": {p99_ratio:.2}"
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}{}", if last { "" } else { "," });
}

/// The newest committed `BENCH_<n>.json` next to the output (excluding
/// the file being written) — the comparison base for trajectory deltas.
/// Discovered, never hardcoded: a stale name here silently compared
/// three issues back.
fn discover_baseline(out_path: &str) -> String {
    let out_name = std::path::Path::new(out_path)
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let dir = std::path::Path::new(out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or(std::path::Path::new("."));
    let mut best: Option<(u32, String)> = None;
    if let Ok(rd) = std::fs::read_dir(dir) {
        for e in rd.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if name == out_name {
                continue;
            }
            let n = name
                .strip_prefix("BENCH_")
                .and_then(|r| r.strip_suffix(".json"))
                .and_then(|r| r.parse::<u32>().ok());
            if let Some(n) = n {
                if best.as_ref().is_none_or(|(b, _)| n > *b) {
                    best = Some((n, name));
                }
            }
        }
    }
    match best {
        Some((_, name)) => format!("{name} (latest committed artifact)"),
        None => String::from("none (no committed BENCH_<n>.json found)"),
    }
}

/// The `machine` header object: the host facts every wall-clock number
/// depends on, and each simulated part's memory/rail inventory.
fn emit_machine_header(json: &mut String) {
    let llc = nemesis_rt::tuner::host_llc_size();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"machine\": {{");
    let _ = writeln!(
        json,
        "    \"host\": {{ \"llc_bytes\": {llc}, \"available_parallelism\": {cpus} }},"
    );
    let sims: [(&str, MachineConfig); 2] = [
        ("e5345", MachineConfig::xeon_e5345()),
        ("x5550", MachineConfig::nehalem_x5550()),
    ];
    let _ = writeln!(json, "    \"sim_machines\": {{");
    for (i, (key, m)) in sims.iter().enumerate() {
        let comma = if i + 1 < sims.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {}: {{ \"numa_nodes\": {}, \"l2_bytes\": {}, \"l3_bytes\": {}, \
             \"dma_channels\": {} }}{comma}",
            quote(key),
            m.topology.num_nodes(),
            m.l2_size,
            m.l3_size,
            m.dma_channels
        );
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
}

/// Host store flavour for the raw-copy frontier bench.
#[derive(Clone, Copy, PartialEq)]
enum StoreFlavour {
    TemporalSse,
    NtSse,
    Memcpy,
}

/// Chunked copy bandwidth (MiB/s) on the host for every store flavour:
/// the ring-drain access pattern (32 KiB chunks) over a working set
/// sized past the LLC, best of `passes` per flavour (min-noise
/// statistic). The flavours are timed back-to-back *inside* each pass
/// so ambient host drift (a shared box changing load between sweeps)
/// lands on all of them equally instead of biasing whichever flavour
/// happened to run in the quiet window. The temporal-vs-NT comparison
/// holds the copy engine fixed (the same SSE loop, only the store
/// instruction differs) so the ratio isolates the write-allocate
/// traffic; memcpy rides along as the libc reference.
fn host_copy_bw_all(len: usize, passes: usize) -> [f64; 3] {
    const CHUNK: usize = 32 << 10;
    const FLAVOURS: [StoreFlavour; 3] = [
        StoreFlavour::TemporalSse,
        StoreFlavour::NtSse,
        StoreFlavour::Memcpy,
    ];
    let src = vec![7u8; len];
    let mut dst = vec![0u8; len];
    // Fault the destination in so page faults never land in the timing.
    for i in (0..len).step_by(4096) {
        dst[i] = 1;
    }
    let mut best = [0f64; 3];
    for _ in 0..passes {
        for (slot, &flavour) in FLAVOURS.iter().enumerate() {
            let t0 = Instant::now();
            let mut at = 0usize;
            while at < len {
                let n = CHUNK.min(len - at);
                match flavour {
                    StoreFlavour::Memcpy => dst[at..at + n].copy_from_slice(&src[at..at + n]),
                    StoreFlavour::TemporalSse => {
                        nemesis_rt::copy::simd_copy(&src[at..at + n], &mut dst[at..at + n], false)
                    }
                    StoreFlavour::NtSse => {
                        nemesis_rt::copy::simd_copy(&src[at..at + n], &mut dst[at..at + n], true)
                    }
                }
                at += n;
            }
            let bw = len as f64 / (1 << 20) as f64 / t0.elapsed().as_secs_f64();
            best[slot] = best[slot].max(bw);
        }
    }
    std::hint::black_box(&dst);
    best
}

/// Simulated cross-socket CMA pingpong bandwidth (MiB/s, virtual time)
/// with the payload buffers either 4 KiB-paged or backed by 2 MiB
/// huge-page windows — the per-page charges (CMA's page walks, pin
/// bookkeeping) are what the huge pages amortize.
fn sim_cma_paged(huge: bool, size: u64, reps: u32) -> f64 {
    let mcfg = MachineConfig::xeon_e5345();
    let (a, b) = mcfg
        .topology
        .pair_for(Placement::DifferentSocket)
        .expect("pair");
    let machine = Arc::new(Machine::new(mcfg));
    let os = Arc::new(Os::new(Arc::clone(&machine)));
    let nem = Nemesis::new(Arc::clone(&os), 2, NemesisConfig::with_lmt(LmtSelect::Cma));
    let elapsed = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let e2 = Arc::clone(&elapsed);
    run_simulation(machine, &[a, b], move |p| {
        let comm = nem.attach(p);
        let os = comm.os();
        let alloc = |rank: usize| {
            if huge {
                os.alloc_huge(rank, size)
            } else {
                os.alloc(rank, size)
            }
        };
        let sbuf = alloc(comm.rank());
        let rbuf = alloc(comm.rank());
        let mut t0 = comm.proc().now();
        for rep in 0..=reps {
            if rep == 1 {
                t0 = comm.proc().now(); // 1 warmup roundtrip
            }
            let tag = rep as i32;
            if comm.rank() == 0 {
                comm.send(1, tag, sbuf, 0, size);
                comm.recv(Some(1), Some(tag), rbuf, 0, size);
            } else {
                comm.recv(Some(0), Some(tag), rbuf, 0, size);
                comm.send(0, tag, sbuf, 0, size);
            }
        }
        if comm.rank() == 0 {
            e2.store(comm.proc().now() - t0, std::sync::atomic::Ordering::Relaxed);
        }
    });
    let ps = elapsed.load(std::sync::atomic::Ordering::Relaxed);
    (2 * reps as u64 * size) as f64 / (1 << 20) as f64 / (ps as f64 / 1e12)
}

/// The `copy_frontier` section — the raw-speed acceptance bars:
/// * host NT-store engine ≥ 1.2× the same SSE loop with temporal
///   stores once the working set is twice the LLC;
/// * simulated huge-page CMA ≥ 1.05× the 4 KiB-paged twin at 1 MiB;
/// * simulated striped-3 ≥ 1.1× striped-2 on the two-DMA-channel
///   Nehalem part (the second rail kind actually overlaps);
/// * rt striped rails under the available-parallelism cap (context:
///   on a single-core host every rail count collapses to the anchor).
fn emit_copy_frontier(json: &mut String, quick: bool, last: bool) {
    let llc = nemesis_rt::tuner::host_llc_size();
    // Twice the LLC, bounded: floor keeps the flavours distinguishable
    // when the sysfs probe fell back, the cap bounds CI memory.
    let len = (2 * llc).clamp(64 << 20, 1 << 30);
    let passes = if quick { 2 } else { 5 };
    eprintln!("[report] copy frontier: host store flavours over {len} B…");
    let [temporal, nt, memcpy] = host_copy_bw_all(len, passes);
    let _ = writeln!(json, "  \"copy_frontier\": {{");
    let _ = writeln!(json, "    \"rt_store_flavours\": {{");
    let _ = writeln!(json, "      \"working_set_bytes\": {len},");
    let _ = writeln!(json, "      \"chunk_bytes\": {},", 32 << 10);
    let _ = writeln!(json, "      \"temporal_sse_mib_s\": {temporal:.0},");
    let _ = writeln!(json, "      \"nt_sse_mib_s\": {nt:.0},");
    let _ = writeln!(json, "      \"memcpy_mib_s\": {memcpy:.0},");
    let _ = writeln!(
        json,
        "      \"nt_over_temporal_sse\": {:.2},",
        nt / temporal
    );
    let _ = writeln!(json, "      \"nt_over_memcpy\": {:.2}", nt / memcpy);
    let _ = writeln!(json, "    }},");
    eprintln!("[report] copy frontier: huge-page CMA windows…");
    let sim_reps = if quick { 2 } else { 4 };
    let small = sim_cma_paged(false, 1 << 20, sim_reps);
    let huge = sim_cma_paged(true, 1 << 20, sim_reps);
    let _ = writeln!(json, "    \"sim_hugepage_cma_1MiB_mib_s\": {{");
    let _ = writeln!(json, "      \"page_4KiB\": {small:.1},");
    let _ = writeln!(json, "      \"page_2MiB\": {huge:.1},");
    let _ = writeln!(json, "      \"huge_over_small\": {:.3}", huge / small);
    let _ = writeln!(json, "    }},");
    eprintln!("[report] copy frontier: second DMA channel…");
    let mut rail_bw = [0f64; 4];
    let _ = writeln!(json, "    \"sim_striped_second_channel_mib_s\": {{");
    let _ = writeln!(
        json,
        "      \"machine\": \"nehalem_x5550 (2 I/OAT channels, one per memory node)\","
    );
    for rails in 1..=4u8 {
        rail_bw[rails as usize - 1] = sim_striped(MachineConfig::nehalem_x5550(), rails, sim_reps);
        let _ = writeln!(
            json,
            "      \"{rails}\": {:.1},",
            rail_bw[rails as usize - 1]
        );
    }
    let _ = writeln!(
        json,
        "      \"striped3_over_striped2\": {:.2}",
        rail_bw[2] / rail_bw[1]
    );
    let _ = writeln!(json, "    }},");
    eprintln!("[report] copy frontier: rt striped under the core cap…");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rt_reps = if quick { 10 } else { 50 };
    let _ = writeln!(json, "    \"rt_striped_capped_mib_s\": {{");
    let _ = writeln!(json, "      \"effective_rail_cap\": {},", cpus.min(4));
    for rails in 1..=4u8 {
        let bw = rt_bandwidth(RtLmt::Striped(rails), 1 << 20, rt_reps);
        let comma = if rails < 4 { "," } else { "" };
        let _ = writeln!(json, "      \"{rails}\": {bw:.1}{comma}");
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}{}", if last { "" } else { "," });
}

/// The `rank_scaling` section (always the report's last section — no
/// trailing comma). Host wall-clock per poll is noisy, so each point
/// takes the best of a few repetitions (min is the right statistic for
/// a cost floor).
fn emit_rank_scaling(json: &mut String, quick: bool, baseline: &str) {
    let scale_steps: u32 = if quick { 24 } else { 96 };
    let scale_reps = if quick { 2 } else { 4 };
    let _ = writeln!(json, "  \"rank_scaling\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"MMPP bursty: 8 active ranks, 8 directed pairs, 256 KiB rendezvous\","
    );
    let _ = writeln!(json, "    \"compared_against\": {},", quote(baseline));
    let universes = [8usize, 64, 256];
    let mut ns_at = [0f64; 3];
    let _ = writeln!(json, "    \"universe_ranks\": {{");
    for (ui, &u) in universes.iter().enumerate() {
        eprintln!("[report] rank scaling at {u} simulated ranks…");
        let mut best = f64::INFINITY;
        let (mut polls, mut resident) = (0u64, 0usize);
        for _ in 0..scale_reps {
            let (ns, p, r) = rank_scaling_probe(u, scale_steps);
            if ns < best {
                (best, polls, resident) = (ns, p, r);
            }
        }
        ns_at[ui] = best;
        let comma = if ui + 1 < universes.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      \"{u}\": {{ \"host_ns_per_poll\": {best:.1}, \"polls\": {polls}, \
             \"resident_tuner_cells\": {resident}, \"pair_matrix_cells\": {} }}{comma}",
            u * u
        );
    }
    let _ = writeln!(json, "    }},");
    let _ = writeln!(
        json,
        "    \"poll_cost_256_over_8\": {:.3}",
        ns_at[2] / ns_at[0]
    );
    let _ = writeln!(json, "  }}");
}

fn main() {
    let mut out_path = String::from("BENCH_10.json");
    let mut quick = false;
    let mut scaling_only = false;
    let mut faults_only = false;
    let mut copy_only = false;
    let mut coll_only = false;
    let mut serve_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--quick" => quick = true,
            "--scaling-only" => scaling_only = true,
            "--faults-only" => faults_only = true,
            "--copy-only" => copy_only = true,
            "--coll-only" => coll_only = true,
            "--serve-only" => serve_only = true,
            other => {
                panic!(
                    "unknown argument {other:?} \
                     (expected --out/--quick/--scaling-only/--faults-only/--copy-only/--coll-only/--serve-only)"
                )
            }
        }
    }
    let baseline = discover_baseline(&out_path);
    // The CI smoke lanes: one section each, bounded to seconds, so the
    // scale-out, availability, raw-copy, collective and serving-tail
    // acceptance bars are checked on every push without paying for the
    // wall-clock bandwidth sections.
    if scaling_only || faults_only || copy_only || coll_only || serve_only {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"issue\": 10,");
        let _ = writeln!(json, "  \"quick\": {quick},");
        let _ = writeln!(json, "  \"compared_against\": {},", quote(&baseline));
        emit_machine_header(&mut json);
        if faults_only {
            emit_fault_recovery(&mut json, quick, true);
        } else if copy_only {
            emit_copy_frontier(&mut json, quick, true);
        } else if coll_only {
            emit_collective_bandwidth(&mut json, quick, true);
        } else if serve_only {
            emit_serving_tail(&mut json, quick, true);
        } else {
            emit_rank_scaling(&mut json, quick, &baseline);
        }
        json.push_str("}\n");
        std::fs::write(&out_path, &json).expect("write report");
        println!("{json}");
        eprintln!("[report] wrote {out_path}");
        return;
    }
    let cfg = if quick {
        Cfg {
            queue_msgs: 200_000,
            pp_reps_small: 500,
            pp_reps_large: 20,
            sim_reps: 2,
        }
    } else {
        Cfg {
            queue_msgs: 2_000_000,
            pp_reps_small: 20_000,
            pp_reps_large: 200,
            sim_reps: 4,
        }
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"issue\": 10,");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"compared_against\": {},", quote(&baseline));
    emit_machine_header(&mut json);

    // --- queue message rates -------------------------------------------------
    eprintln!("[report] queue message rates ({} msgs)…", cfg.queue_msgs);
    let spsc = queue_spsc(cfg.queue_msgs);
    let spsc_batch = queue_spsc_batch(cfg.queue_msgs);
    let mpsc4 = queue_mpsc4(cfg.queue_msgs);
    let _ = writeln!(json, "  \"queue_msg_rate\": {{");
    let _ = writeln!(json, "    \"spsc_msgs_per_s\": {spsc:.0},");
    let _ = writeln!(
        json,
        "    \"spsc_batch_drain_msgs_per_s\": {spsc_batch:.0},"
    );
    let _ = writeln!(json, "    \"mpsc4_msgs_per_s\": {mpsc4:.0}");
    let _ = writeln!(json, "  }},");

    // --- real-thread bandwidth ----------------------------------------------
    let sizes: [(&str, usize, bool); 3] = [
        ("64B", 64, true),
        ("4KiB", 4 << 10, true),
        ("1MiB", 1 << 20, false),
    ];
    let _ = writeln!(json, "  \"rt_bandwidth_mib_s\": {{");
    for (bi, lmt) in ALL_RT_LMTS.iter().enumerate() {
        eprintln!("[report] rt bandwidth via {:?}…", lmt);
        let _ = writeln!(json, "    {}: {{", quote(rt_lmt_key(*lmt)));
        // The chunk ceiling this backend's adaptive schedule grows to —
        // context for reading the bandwidth numbers across PRs.
        let preferred = nemesis_rt::backend_for(*lmt, 2).preferred_chunk();
        let _ = writeln!(json, "      \"preferred_chunk_bytes\": {preferred},");
        for (si, (label, size, small)) in sizes.iter().enumerate() {
            let reps = if *small {
                cfg.pp_reps_small
            } else {
                cfg.pp_reps_large
            };
            let bw = rt_bandwidth(*lmt, *size, reps);
            let comma = if si + 1 < sizes.len() { "," } else { "" };
            let _ = writeln!(json, "      {}: {bw:.1}{comma}", quote(label));
        }
        let comma = if bi + 1 < ALL_RT_LMTS.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }},");

    // --- simulated pingpong: throughput + L2 misses --------------------------
    let sim_lmts: [(&str, LmtSelect); 4] = [
        ("default LMT", LmtSelect::ShmCopy),
        ("vmsplice LMT", LmtSelect::Vmsplice),
        ("KNEM LMT", LmtSelect::Knem(KnemSelect::SyncCpu)),
        (
            "KNEM LMT with I/OAT",
            LmtSelect::Knem(KnemSelect::AsyncIoat),
        ),
    ];
    let _ = writeln!(json, "  \"sim_pingpong_256KiB\": {{");
    for (i, (label, lmt)) in sim_lmts.iter().enumerate() {
        eprintln!("[report] sim pingpong via {label}…");
        let r = pingpong_bench(
            MachineConfig::xeon_e5345(),
            NemesisConfig::with_lmt(*lmt),
            Placement::DifferentSocket,
            256 << 10,
            cfg.sim_reps,
            1,
        );
        let comma = if i + 1 < sim_lmts.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {}: {{ \"throughput_mib_s\": {:.1}, \"l2_misses_per_rep\": {} }}{comma}",
            quote(label),
            r.throughput_mib_s,
            r.l2_misses_per_rep
        );
    }
    let _ = writeln!(json, "  }},");

    // --- CMA vs KNEM: single-copy with and without a kernel module ----------
    let single_copy: [(&str, LmtSelect); 3] = [
        ("CMA LMT", LmtSelect::Cma),
        ("KNEM LMT", LmtSelect::Knem(KnemSelect::SyncCpu)),
        (
            "KNEM LMT with I/OAT",
            LmtSelect::Knem(KnemSelect::AsyncIoat),
        ),
    ];
    let _ = writeln!(json, "  \"cma_vs_knem\": {{");
    for (si, (skey, size)) in [("256KiB", 256u64 << 10), ("1MiB", 1 << 20)]
        .iter()
        .enumerate()
    {
        eprintln!("[report] cma vs knem at {skey}…");
        let _ = writeln!(json, "    {}: {{", quote(skey));
        for (i, (label, lmt)) in single_copy.iter().enumerate() {
            let r = sim_pingpong(*lmt, *size, cfg.sim_reps);
            let comma = if i + 1 < single_copy.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      {}: {{ \"throughput_mib_s\": {:.1}, \"l2_misses_per_rep\": {} }}{comma}",
                quote(label),
                r.throughput_mib_s,
                r.l2_misses_per_rep
            );
        }
        let comma = if si == 0 { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }},");

    // --- striped scaling -----------------------------------------------------
    // Single rail = the degenerate stripe (plain CMA mechanics); the
    // speedup row is the acceptance bar (≥ 1.5× at 2 rails in the
    // simulated cost model: the DMA rail's bytes move concurrently
    // with the CPU rail's). Measured on the Nehalem-class part — its
    // per-node memory controllers leave bandwidth headroom for the
    // engine. The E5345's single 8 GiB/s FSB is already saturated by
    // one copy stream, so striping *cannot* win there; its 2-rail
    // number is kept as the documented contrast.
    let _ = writeln!(json, "  \"striped_scaling\": {{");
    let _ = writeln!(
        json,
        "    \"machine\": \"nehalem_x5550 (per-node memory controllers; learned span weighting)\","
    );
    let mut sim_bw = [0f64; 4];
    let _ = writeln!(json, "    \"sim_1MiB_mib_s\": {{");
    for rails in 1..=4u8 {
        eprintln!("[report] striped scaling, {rails} rail(s)…");
        sim_bw[rails as usize - 1] =
            sim_striped(MachineConfig::nehalem_x5550(), rails, cfg.sim_reps);
        let comma = if rails < 4 { "," } else { "" };
        let _ = writeln!(
            json,
            "      \"{rails}\": {:.1}{comma}",
            sim_bw[rails as usize - 1]
        );
    }
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"sim_speedup_over_single_rail\": {{");
    for rails in 2..=4usize {
        let comma = if rails < 4 { "," } else { "" };
        let _ = writeln!(
            json,
            "      \"{rails}\": {:.2}{comma}",
            sim_bw[rails - 1] / sim_bw[0]
        );
    }
    let _ = writeln!(json, "    }},");
    eprintln!("[report] striped scaling, FSB-bound contrast…");
    let fsb_1 = sim_striped(MachineConfig::xeon_e5345(), 1, cfg.sim_reps);
    let fsb_2 = sim_striped(MachineConfig::xeon_e5345(), 2, cfg.sim_reps);
    let _ = writeln!(
        json,
        "    \"e5345_fsb_bound_2rail_speedup\": {:.2},",
        fsb_2 / fsb_1
    );
    // rt mirror: wall-clock context (real thread + engine overlap).
    let _ = writeln!(json, "    \"rt_1MiB_mib_s\": {{");
    for rails in 1..=4u8 {
        eprintln!("[report] rt striped, {rails} rail(s)…");
        let bw = rt_bandwidth(RtLmt::Striped(rails), 1 << 20, cfg.pp_reps_large);
        let comma = if rails < 4 { "," } else { "" };
        let _ = writeln!(json, "      \"{rails}\": {bw:.1}{comma}");
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");

    // --- learned backend selection vs the blended rules ----------------------
    // The bar: after warmup (the selector's sweep runs during the
    // untimed roundtrips), the learned selection must reach ≥ 0.95× the
    // best fixed backend at every size on both parts. 64 B and 4 KiB
    // ride the eager path — no backend resolution — so they pin the
    // selector's zero-overhead contract there; 1 MiB is where the
    // choice is real.
    type MachinePick = (&'static str, fn() -> MachineConfig);
    let machines: [MachinePick; 2] = [
        ("e5345", MachineConfig::xeon_e5345),
        ("x5550", MachineConfig::nehalem_x5550),
    ];
    let lb_candidates: [(&str, LmtSelect); 5] = [
        ("default LMT", LmtSelect::ShmCopy),
        ("vmsplice LMT", LmtSelect::Vmsplice),
        (
            "KNEM LMT (auto threshold)",
            LmtSelect::Knem(KnemSelect::Auto),
        ),
        ("CMA LMT", LmtSelect::Cma),
        ("striped LMT (2 rails)", LmtSelect::Striped { rails: 2 }),
    ];
    let lb_sizes: [(&str, u64); 3] = [("64B", 64), ("4KiB", 4 << 10), ("1MiB", 1 << 20)];
    // Warmup must cover the 8-arm sweep (2 probes per arm, per
    // direction) with headroom to settle on the winner.
    let lb_warm = 24u32;
    let _ = writeln!(json, "  \"learned_backend_vs_dynamic\": {{");
    for (mi, (mkey, mcfg)) in machines.iter().enumerate() {
        let _ = writeln!(json, "    {}: {{", quote(mkey));
        for (si, (skey, size)) in lb_sizes.iter().enumerate() {
            eprintln!("[report] learned backend vs dynamic, {mkey} at {skey}…");
            let mut best_fixed = 0f64;
            let mut best_label = "";
            for (label, lmt) in lb_candidates {
                let fixed = NemesisConfig {
                    backend: BackendSelect::Dynamic,
                    ..NemesisConfig::with_lmt(lmt)
                };
                let bw = sim_pingpong_cfg(mcfg(), fixed, *size, cfg.sim_reps, 1);
                if bw > best_fixed {
                    best_fixed = bw;
                    best_label = label;
                }
            }
            let dynamic_cfg = NemesisConfig {
                backend: BackendSelect::Dynamic,
                ..NemesisConfig::with_lmt(LmtSelect::Dynamic)
            };
            let dynamic_bw = sim_pingpong_cfg(mcfg(), dynamic_cfg, *size, cfg.sim_reps, 1);
            let learned_cfg = NemesisConfig {
                backend: BackendSelect::LearnedBackend,
                ..NemesisConfig::with_lmt(LmtSelect::Dynamic)
            };
            let learned_bw = sim_pingpong_cfg(mcfg(), learned_cfg, *size, cfg.sim_reps, lb_warm);
            let comma = if si + 1 < lb_sizes.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      {}: {{ \"best_fixed\": {}, \"best_fixed_mib_s\": {best_fixed:.1}, \
                 \"dynamic_mib_s\": {dynamic_bw:.1}, \"learned_mib_s\": {learned_bw:.1}, \
                 \"learned_over_best_fixed\": {:.3} }}{comma}",
                quote(skey),
                quote(best_label),
                learned_bw / best_fixed
            );
        }
        let comma = if mi + 1 < machines.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }},");

    // --- learned vs static -------------------------------------------------
    let conv_reps = if quick { 12 } else { 24 };
    let _ = writeln!(json, "  \"learned_vs_static\": {{");
    let _ = writeln!(json, "    \"sim\": {{");
    let placements: [(&str, Placement); 2] = [
        ("shared_l2", Placement::SharedL2),
        ("different_socket", Placement::DifferentSocket),
    ];
    for (pi, (pkey, placement)) in placements.iter().enumerate() {
        eprintln!("[report] learned-vs-static sim, {pkey}…");
        let (learned, arch) = sim_threshold_converge(*placement, conv_reps);
        let chunk = sim_chunk_converge(*placement, conv_reps);
        let fixed_bw = sim_pingpong_schedule(*placement, ChunkScheduleSelect::Fixed, cfg.sim_reps);
        let learned_bw =
            sim_pingpong_schedule(*placement, ChunkScheduleSelect::Learned, cfg.sim_reps);
        let _ = writeln!(json, "      {}: {{", quote(pkey));
        let _ = writeln!(json, "        \"architectural_dma_min\": {arch},");
        let _ = writeln!(json, "        \"learned_dma_min\": {learned},");
        let _ = writeln!(
            json,
            "        \"learned_over_architectural\": {:.2},",
            learned as f64 / arch as f64
        );
        let _ = writeln!(json, "        \"learned_chunk\": {chunk},");
        let _ = writeln!(
            json,
            "        \"pingpong_1MiB_mib_s\": {{ \"fixed_chunk\": {fixed_bw:.1}, \
             \"learned_schedule\": {learned_bw:.1}, \"delta_pct\": {:.1} }}",
            delta_pct(fixed_bw, learned_bw)
        );
        let comma = if pi + 1 < placements.len() { "," } else { "" };
        let _ = writeln!(json, "      }}{comma}");
    }
    let _ = writeln!(json, "    }},");
    // rt: 1 MiB bandwidth, learned chunk schedule (converged during
    // warmup) vs the fixed full-slot baseline, per backend.
    let _ = writeln!(json, "    \"rt_1MiB_mib_s\": {{");
    let rt_reps = cfg.pp_reps_large;
    let rt_warmup = if quick { 8 } else { 32 };
    for (bi, lmt) in ALL_RT_LMTS.iter().enumerate() {
        eprintln!("[report] learned-vs-static rt via {lmt:?}…");
        let fixed_cfg = RtConfig {
            chunk_schedule: RtChunkScheduleSelect::Fixed,
            ..RtConfig::default()
        };
        let tuner = RtTuner::new(2);
        let learned_cfg = RtConfig {
            chunk_schedule: RtChunkScheduleSelect::Learned,
            tuner: Some(Arc::clone(&tuner)),
            ..RtConfig::default()
        };
        // The chunk schedule only exists on the double-buffer ring;
        // the receiver-driven engines (direct, offload) move the whole
        // payload in one pass, so an A/B there would only measure the
        // thread-placement lottery. For the ring, interleave the two
        // modes trial by trial (best of 10 each) and alternate which
        // goes first, so ambient load drift and position effects hit
        // both equally — the delta then reflects the schedules, not
        // the weather.
        let schedule_applies = *lmt == RtLmt::DoubleBuffer;
        let (fixed_bw, learned_bw) = if schedule_applies {
            // Many short paired blocks, alternating order: each pair is
            // adjacent in time, so an ambient load spike lands on both
            // arms (or is outvoted by the median over 24 pairs).
            let block_reps = rt_reps.clamp(10, 50);
            let mut fixed_samples = Vec::new();
            let mut learned_samples = Vec::new();
            for trial in 0..24 {
                let fixed = || rt_bandwidth_cfg(*lmt, 1 << 20, block_reps, rt_warmup, &fixed_cfg);
                let learned =
                    || rt_bandwidth_cfg(*lmt, 1 << 20, block_reps, rt_warmup, &learned_cfg);
                let (f, l) = if trial % 2 == 0 {
                    let f = fixed();
                    (f, learned())
                } else {
                    let l = learned();
                    (fixed(), l)
                };
                fixed_samples.push(f);
                learned_samples.push(l);
            }
            let median = |mut v: Vec<f64>| {
                v.sort_by(f64::total_cmp);
                v[v.len() / 2]
            };
            (median(fixed_samples), median(learned_samples))
        } else {
            let mut bw = 0f64;
            for _ in 0..5 {
                bw = bw.max(rt_bandwidth_cfg(
                    *lmt,
                    1 << 20,
                    rt_reps,
                    rt_warmup,
                    &learned_cfg,
                ));
            }
            (bw, bw)
        };
        let target = tuner.learned_chunk(0, 1).unwrap_or(0);
        let comma = if bi + 1 < ALL_RT_LMTS.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {}: {{ \"schedule_applies\": {schedule_applies}, \"fixed_chunk\": {fixed_bw:.1}, \
             \"learned_schedule\": {learned_bw:.1}, \"learned_chunk_target\": {target}, \
             \"delta_pct\": {:.1} }}{comma}",
            quote(rt_lmt_key(*lmt)),
            delta_pct(fixed_bw, learned_bw)
        );
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");

    emit_collective_bandwidth(&mut json, quick, false);
    emit_copy_frontier(&mut json, quick, false);
    emit_fault_recovery(&mut json, quick, false);
    emit_serving_tail(&mut json, quick, false);
    emit_rank_scaling(&mut json, quick, &baseline);
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("[report] wrote {out_path}");
}
