//! §6 forward-looking study: the four LMTs on a Nehalem-class machine
//! (Xeon X5550: private 256 KiB L2 per core, 8 MiB L3 per socket,
//! per-socket memory controllers).
//!
//! The paper predicts that "the increasing number of cores and large,
//! shared caches in the upcoming processors such as Intel Nehalem, and
//! the democratization of NUMA, will keep raising the need to carefully
//! tune intranode communication according to process affinities." This
//! experiment checks that the §4 dichotomy carries over with the L3
//! playing the Clovertown L2's role:
//!
//! * same-socket pairs share the 8 MiB L3 → the two-copy default stays
//!   competitive (the Figure-4 regime);
//! * cross-socket pairs share nothing and pay NUMA DRAM → single-copy
//!   KNEM wins big (the Figure-5 regime);
//! * `DMAmin` derives from the L3: 8 MiB / (2×4) = 1 MiB.

use nemesis_bench::experiments::{ioat_crossover, numa_series};
use nemesis_bench::{save_results, size_label};
use nemesis_sim::topology::Placement;
use nemesis_sim::MachineConfig;

fn main() {
    let mcfg = MachineConfig::nehalem_x5550();
    println!(
        "DMAmin on {}: {} (from the 8 MiB L3 shared by 4 cores)\n",
        mcfg.name,
        size_label(mcfg.dma_min_architectural())
    );
    save_results(
        "numa_study",
        "Section 6 study: IMB Pingpong on Nehalem X5550 (shared L3 vs NUMA cross-socket)",
        "Throughput (MiB/s)",
        &numa_series(),
    );
    let crossover = ioat_crossover(&mcfg, Placement::SharedL3);
    println!(
        "Measured I/OAT crossover (shared L3): {}",
        crossover.map(size_label).unwrap_or_else(|| "> 8MiB".into())
    );
}
