//! §3.5 / §6 punchline: "No single method is optimal for all
//! situations, and so a blended approach is essential for high
//! performance for general benchmarks and applications."
//!
//! This experiment reruns the Figure-4 and Figure-5 PingPongs with the
//! blended `LmtSelect::Dynamic` policy added as a series: it should
//! hug the default LMT's curve on the shared-cache pair and KNEM's
//! (auto-threshold) curve on the cross-socket pair — the upper envelope
//! of the fixed backends.

use nemesis_bench::{pingpong_series, save_results, PP_SIZES};
use nemesis_core::{KnemSelect, LmtSelect};
use nemesis_sim::topology::Placement;
use nemesis_sim::MachineConfig;

fn main() {
    let mcfg = MachineConfig::xeon_e5345();
    let backends = [
        ("default LMT", LmtSelect::ShmCopy),
        ("vmsplice LMT", LmtSelect::Vmsplice),
        (
            "KNEM LMT (auto threshold)",
            LmtSelect::Knem(KnemSelect::Auto),
        ),
        ("dynamic LMT (blended)", LmtSelect::Dynamic),
    ];
    for (tag, placement, title) in [
        (
            "dynamic_policy_shared",
            Placement::SharedL2,
            "Blended LMT policy vs fixed backends — shared 4 MiB L2",
        ),
        (
            "dynamic_policy_split",
            Placement::DifferentSocket,
            "Blended LMT policy vs fixed backends — no shared cache",
        ),
    ] {
        let series: Vec<_> = backends
            .iter()
            .map(|(label, lmt)| pingpong_series(label, &mcfg, *lmt, placement, &PP_SIZES))
            .collect();
        save_results(tag, title, "Throughput (MiB/s)", &series);
    }
}
