//! Figure 7: IMB Alltoall aggregated throughput between 8 local
//! processes, 4 KiB – 4 MiB. Kernel-assisted LMTs run with a lowered
//! 8 KiB rendezvous threshold (§4.2 / §4.4).

use nemesis_bench::experiments::fig7_series;
use nemesis_bench::save_results;

fn main() {
    save_results(
        "fig7",
        "Figure 7: IMB Alltoall aggregated throughput between 8 local processes",
        "Aggregated throughput (MiB/s)",
        &fig7_series(),
    );
}
