//! Table 2: L2 cache misses. PingPong processes bound to different dies;
//! IS and Alltoall use all 8 cores.

use nemesis_bench::experiments::table2_rows;

fn fmt_miss(m: u64) -> String {
    if m >= 1_000_000 {
        format!("{:.2}M", m as f64 / 1e6)
    } else if m >= 10_000 {
        format!("{:.1}k", m as f64 / 1e3)
    } else {
        format!("{m}")
    }
}

fn main() {
    println!("### Table 2: L2 cache misses (per repetition; IS totals)\n");
    println!("| Workload | default LMT | vmsplice LMT | KNEM kernel copy | KNEM I/OAT |");
    println!("|---|---|---|---|---|");
    let mut csv = String::from("workload,default,vmsplice,knem_copy,knem_ioat\n");
    for row in table2_rows() {
        println!(
            "| {} | {} | {} | {} | {} |",
            row.workload,
            fmt_miss(row.misses[0]),
            fmt_miss(row.misses[1]),
            fmt_miss(row.misses[2]),
            fmt_miss(row.misses[3])
        );
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            row.workload, row.misses[0], row.misses[1], row.misses[2], row.misses[3]
        ));
    }
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/table2.csv", csv);
}
