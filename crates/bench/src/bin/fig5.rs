//! Figure 5: IMB PingPong throughput between 2 processes *not* sharing
//! any cache (different sockets), for the four LMT configurations.

use nemesis_bench::experiments::fig5_series;
use nemesis_bench::save_results;

fn main() {
    save_results(
        "fig5",
        "Figure 5: IMB Pingpong throughput, 2 processes not sharing any cache",
        "Throughput (MiB/s)",
        &fig5_series(),
    );
}
