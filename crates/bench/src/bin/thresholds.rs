//! §3.5 study: empirical I/OAT crossover vs the `DMAmin` formula.
//!
//! The paper derives `DMAmin = cache_size / (2 × processes sharing the
//! cache)`: 1 MiB for two processes sharing a 4 MiB L2, 2 MiB when no
//! cache is shared, and +50% on a 6 MiB-L2 host.

use nemesis_bench::experiments::ioat_crossover;
use nemesis_bench::size_label;
use nemesis_sim::topology::Placement;
use nemesis_sim::MachineConfig;

fn main() {
    println!("### Section 3.5: I/OAT threshold — DMAmin formula vs measured crossover\n");
    println!("| Host / placement | DMAmin (formula) | Measured crossover |");
    println!("|---|---|---|");
    let mut csv = String::from("config,dma_min,measured\n");
    let cases = [
        (
            "E5345, shared 4 MiB L2 (2 sharers)",
            MachineConfig::xeon_e5345(),
            Placement::SharedL2,
            MachineConfig::xeon_e5345().dma_min_for_sharers(2),
        ),
        (
            "E5345, no shared cache (1 sharer)",
            MachineConfig::xeon_e5345(),
            Placement::DifferentSocket,
            MachineConfig::xeon_e5345().dma_min_for_sharers(1),
        ),
        (
            "X5460, shared 6 MiB L2 (2 sharers)",
            MachineConfig::xeon_x5460(),
            Placement::SharedL2,
            MachineConfig::xeon_x5460().dma_min_for_sharers(2),
        ),
    ];
    for (label, mcfg, placement, dma_min) in cases {
        let measured = ioat_crossover(&mcfg, placement);
        let m = measured.map(size_label).unwrap_or_else(|| "> 8MiB".into());
        println!("| {} | {} | {} |", label, size_label(dma_min), m);
        csv.push_str(&format!("{label},{dma_min},{}\n", measured.unwrap_or(0)));
    }
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/thresholds.csv", csv);
}
