//! Diagnostic: one striped pingpong per rail count on the Nehalem
//! machine, with `STRIPE_TRACE=1` to dump per-rail completion times.
//! Not part of the report; run by hand when stripe numbers look off.

use nemesis_core::{LmtSelect, NemesisConfig, ThresholdSelect};
use nemesis_sim::topology::Placement;
use nemesis_sim::MachineConfig;
use nemesis_workloads::imb::pingpong_bench;

fn main() {
    for rails in [1u8, 2, 3, 4] {
        let cfg = NemesisConfig {
            threshold: ThresholdSelect::Learned,
            ..NemesisConfig::with_lmt(LmtSelect::Striped { rails })
        };
        eprintln!("=== rails={rails} ===");
        let r = pingpong_bench(
            MachineConfig::nehalem_x5550(),
            cfg,
            Placement::DifferentSocket,
            1 << 20,
            4,
            6,
        );
        eprintln!("rails={rails} -> {:.1} MiB/s", r.throughput_mib_s);
    }
}
