//! Figure 6: performance comparison of the KNEM synchronous and
//! asynchronous models, with and without I/OAT copy offload.

use nemesis_bench::experiments::fig6_series;
use nemesis_bench::save_results;

fn main() {
    save_results(
        "fig6",
        "Figure 6: KNEM synchronous vs asynchronous models (2 processes, no shared cache)",
        "Throughput (MiB/s)",
        &fig6_series(),
    );
}
