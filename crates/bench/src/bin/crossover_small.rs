//! §4.2 / §4.4: where the kernel-assisted LMTs start beating the default
//! two-copy strategy — "KNEM becomes interesting when the message size
//! passes 8 KiB" (PingPong) and "KNEM is interesting starting at 4 KiB
//! messages" (Alltoall).
//!
//! All LMTs run with the rendezvous threshold lowered to 2 KiB so the
//! LMT path itself is measured at small sizes.

use nemesis_bench::{save_results, size_label, Series};
use nemesis_core::{KnemSelect, LmtSelect, NemesisConfig};
use nemesis_sim::topology::Placement;
use nemesis_sim::MachineConfig;
use nemesis_workloads::imb::{alltoall_bench, pingpong_bench};

const SIZES: [u64; 7] = [
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
];

fn main() {
    let mcfg = MachineConfig::xeon_e5345;
    let mut pp_series = Vec::new();
    let mut a2a_series = Vec::new();
    for (label, lmt) in [
        ("default LMT", LmtSelect::ShmCopy),
        ("KNEM LMT", LmtSelect::Knem(KnemSelect::SyncCpu)),
    ] {
        let mut cfg = NemesisConfig::with_lmt(lmt);
        cfg.eager_max = 2 << 10;
        let pp: Vec<(u64, f64)> = SIZES
            .iter()
            .map(|&s| {
                let r = pingpong_bench(mcfg(), cfg.clone(), Placement::DifferentSocket, s, 10, 3);
                (s, r.throughput_mib_s)
            })
            .collect();
        pp_series.push(Series {
            label: label.to_string(),
            points: pp,
        });
        let a2a: Vec<(u64, f64)> = SIZES
            .iter()
            .map(|&s| {
                let r = alltoall_bench(mcfg(), cfg.clone(), 8, s, 3, 1);
                (s, r.agg_throughput_mib_s)
            })
            .collect();
        a2a_series.push(Series {
            label: label.to_string(),
            points: a2a,
        });
    }
    save_results(
        "crossover_small_pingpong",
        "Section 4.2: small-message crossover, PingPong (no shared cache, LMT threshold 2 KiB)",
        "Throughput (MiB/s)",
        &pp_series,
    );
    save_results(
        "crossover_small_alltoall",
        "Section 4.4: small-message crossover, Alltoall (8 processes, LMT threshold 2 KiB)",
        "Aggregated throughput (MiB/s)",
        &a2a_series,
    );
    // Report the crossover points.
    for (name, series) in [("PingPong", &pp_series), ("Alltoall", &a2a_series)] {
        let cross = series[0]
            .points
            .iter()
            .zip(&series[1].points)
            .find(|(d, k)| k.1 > d.1)
            .map(|(d, _)| size_label(d.0))
            .unwrap_or_else(|| "none".into());
        println!("KNEM overtakes the default LMT in {name} at: {cross}");
    }
}
