//! Ablation: KNEM's "vectorial buffers" (§5) vs pack/unpack, as a
//! function of block granularity.
//!
//! A 1 MiB strided payload is sent between two cores that share no
//! cache, split into blocks from 64 B (one cache line per row — the
//! worst case for scatter machinery) up to 256 KiB. KNEM hands the
//! kernel both scatter lists, so the transfer stays single-copy but
//! pays pinning and mapping per segment; the shm ring and pipes cannot
//! express scatter lists on the wire, so they pack into a staging
//! buffer and unpack on the other side — two extra copies whose cost is
//! granularity-independent.
//!
//! The result is a crossover, and it is the real reason MPI datatype
//! engines choose pack/unpack for fine-grained types and scatter
//! transfers for coarse ones: per-segment overhead dominates below a
//! few hundred bytes per block; the saved copies dominate above.

use nemesis_core::{KnemSelect, LmtSelect, NemesisConfig, VectorLayout};
use nemesis_kernel::Os;
use nemesis_sim::topology::Placement;
use nemesis_sim::{mib_per_s, run_simulation, Machine, MachineConfig};

use nemesis_bench::{save_results, Series};

use std::sync::Arc;

/// One strided pingpong: returns half-roundtrip throughput in MiB/s.
fn strided_pingpong(lmt: LmtSelect, layout: VectorLayout, reps: u32) -> f64 {
    let mcfg = MachineConfig::xeon_e5345();
    let (a, b) = mcfg
        .topology
        .pair_for(Placement::DifferentSocket)
        .expect("dual socket");
    let machine = Arc::new(Machine::new(mcfg));
    let os = Arc::new(Os::new(Arc::clone(&machine)));
    let mut cfg = NemesisConfig::with_lmt(lmt);
    cfg.eager_max = 16 << 10; // the 1 MiB payload always takes the LMT
    let nem = nemesis_core::Nemesis::new(os, 2, cfg);
    let timing = parking_lot::Mutex::new((0u64, 0u64));
    run_simulation(Arc::clone(&machine), &[a, b], |p| {
        let comm = nem.attach(p);
        let os = comm.os();
        let buf = os.alloc_local(p, layout.end());
        os.with_data_mut(p, buf, |d| d.fill(p.pid() as u8 + 1));
        os.touch_write(p, buf, 0, layout.end());
        let iter = || {
            if comm.rank() == 0 {
                comm.sendv(1, 0, buf, &layout);
                comm.recvv(Some(1), Some(0), buf, &layout);
            } else {
                comm.recvv(Some(0), Some(0), buf, &layout);
                comm.sendv(0, 0, buf, &layout);
            }
        };
        iter(); // warm-up
        comm.barrier();
        let t0 = p.now();
        for _ in 0..reps {
            iter();
        }
        comm.barrier();
        if comm.rank() == 0 {
            *timing.lock() = (t0, p.now());
        }
    });
    let (t0, t1) = *timing.lock();
    let half_rtt = (t1 - t0) / reps as u64 / 2;
    mib_per_s(layout.total(), half_rtt)
}

fn main() {
    const TOTAL: u64 = 1 << 20;
    let configs = [
        ("default LMT (pack+2-copy+unpack)", LmtSelect::ShmCopy),
        ("vmsplice LMT (pack+1-copy+unpack)", LmtSelect::Vmsplice),
        (
            "KNEM LMT (native scatter, 1 copy)",
            LmtSelect::Knem(KnemSelect::SyncCpu),
        ),
        (
            "KNEM LMT with I/OAT (native scatter)",
            LmtSelect::Knem(KnemSelect::AsyncIoat),
        ),
    ];
    let block_sizes = [64u64, 512, 4 << 10, 32 << 10, 256 << 10];
    let mut series: Vec<Series> = configs
        .iter()
        .map(|(label, _)| Series {
            label: label.to_string(),
            points: Vec::new(),
        })
        .collect();
    for &bl in &block_sizes {
        // Fixed 1 MiB payload, blocks of `bl` bytes separated by
        // equal-sized gaps.
        let layout = VectorLayout::strided(0, bl, 2 * bl, TOTAL / bl);
        for (i, (_, lmt)) in configs.iter().enumerate() {
            let thr = strided_pingpong(*lmt, layout, 3);
            // Key the series by block size (the x-axis of this study).
            series[i].points.push((bl, thr));
        }
    }
    save_results(
        "vector_ablation",
        "Ablation (§5): 1 MiB strided pingpong vs block size, no shared cache — \
         KNEM native scatter vs pack/unpack",
        "Throughput (MiB/s); x = bytes per block",
        &series,
    );
    println!(
        "Fine-grained layouts favour pack/unpack (per-segment pin+map dominates); \
         coarse layouts favour KNEM's native scatter (saved copies dominate). \
         MPICH2's datatype engine makes the same choice."
    );
}
