//! §4.4 companion: "We observed similar behavior for several operations
//! but present only Alltoall results here."
//!
//! This binary regenerates that claim across the rest of the IMB suite —
//! Sendrecv, Exchange, Bcast, Allgather and Allreduce over 8 local
//! processes — and reports, for each operation and message size, the
//! aggregated throughput of the four LMT configurations. The LMT
//! ordering of Figure 7 (KNEM ≥ vmsplice ≥ default for large messages;
//! I/OAT ahead for the largest) should hold for every memory-intensive
//! operation.

use nemesis_bench::{save_results, Series};
use nemesis_core::NemesisConfig;
use nemesis_sim::MachineConfig;
use nemesis_workloads::imb_ext::{suite_bench, SuiteBench};

fn main() {
    let sizes: [u64; 6] = [16 << 10, 64 << 10, 128 << 10, 512 << 10, 1 << 20, 2 << 20];
    for bench in SuiteBench::ALL {
        let series: Vec<Series> = nemesis_bench::four_lmts()
            .iter()
            .map(|(label, lmt)| {
                let points = sizes
                    .iter()
                    .map(|&s| {
                        let mut cfg = NemesisConfig::with_lmt(*lmt);
                        // Lowered LMT activation as in Figure 7 (§4.4).
                        if !matches!(lmt, nemesis_core::LmtSelect::ShmCopy) {
                            cfg.eager_max = 8 << 10;
                        }
                        let reps = if s >= 1 << 20 { 2 } else { 3 };
                        let r = suite_bench(MachineConfig::xeon_e5345(), cfg, bench, 8, s, reps, 1);
                        (s, r.agg_throughput_mib_s)
                    })
                    .collect();
                Series {
                    label: label.to_string(),
                    points,
                }
            })
            .collect();
        save_results(
            &format!("imb_{}", bench.label().to_lowercase()),
            &format!(
                "Section 4.4 companion: IMB {} aggregated throughput, 8 local processes",
                bench.label()
            ),
            "Aggregated throughput (MiB/s)",
            &series,
        );
    }
}
