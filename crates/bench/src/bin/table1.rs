//! Table 1: execution time of the NAS proxy kernels under the four LMT
//! configurations, with the I/OAT speedup column.

use nemesis_bench::experiments::table1_rows;

fn main() {
    println!("### Table 1: execution time of the NAS proxy kernels (virtual ms)\n");
    println!(
        "| NAS Kernel | default LMT | vmsplice LMT | KNEM kernel copy | KNEM I/OAT | Speedup |"
    );
    println!("|---|---|---|---|---|---|");
    let mut csv = String::from("kernel,default,vmsplice,knem_copy,knem_ioat,speedup_pct\n");
    let mut md = String::new();
    for row in table1_rows() {
        let line = format!(
            "| {} | {:.2} ms | {:.2} ms | {:.2} ms | {:.2} ms | {}{:.1}% |",
            row.kernel,
            row.times_ms[0],
            row.times_ms[1],
            row.times_ms[2],
            row.times_ms[3],
            if row.speedup_pct >= 0.0 { "+ " } else { "- " },
            row.speedup_pct.abs()
        );
        println!("{line}");
        md.push_str(&line);
        md.push('\n');
        csv.push_str(&format!(
            "{},{:.3},{:.3},{:.3},{:.3},{:.2}\n",
            row.kernel,
            row.times_ms[0],
            row.times_ms[1],
            row.times_ms[2],
            row.times_ms[3],
            row.speedup_pct
        ));
    }
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/table1.csv", csv);
    let _ = std::fs::write("results/table1.md", md);
}
