//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * number of copy buffers in the shared-memory ring (double buffering
//!   vs more/less) — §2 says two overlapping copies partially hide each
//!   other;
//! * copy-ring chunk size;
//! * eager→rendezvous threshold (§3.5 discusses lowering it);
//! * eager cell payload size;
//! * the §6 collective-hint threshold extension (lower `DMAmin` when the
//!   collective layer announces concurrent transfers);
//! * the I/OAT engine bandwidth (where does the crossover move when the
//!   engine is faster or slower than the paper's part).

use nemesis_bench::size_label;
use nemesis_core::{KnemSelect, LmtSelect, NemesisConfig};
use nemesis_sim::topology::Placement;
use nemesis_sim::MachineConfig;
use nemesis_workloads::imb::{alltoall_bench, pingpong_bench};

fn tput(cfg: NemesisConfig, size: u64) -> f64 {
    pingpong_bench(
        MachineConfig::xeon_e5345(),
        cfg,
        Placement::SharedL2,
        size,
        6,
        2,
    )
    .throughput_mib_s
}

fn main() {
    println!("### Ablation: ring buffer count (default LMT, 512 KiB, shared L2)\n");
    println!("| ring buffers | MiB/s |");
    println!("|---|---|");
    for bufs in [1, 2, 4, 8] {
        let mut cfg = NemesisConfig::with_lmt(LmtSelect::ShmCopy);
        cfg.ring_bufs = bufs;
        println!("| {} | {:.0} |", bufs, tput(cfg, 512 << 10));
    }

    println!("\n### Ablation: ring chunk size (default LMT, 512 KiB, 2 buffers)\n");
    println!("| chunk | MiB/s |");
    println!("|---|---|");
    for chunk in [8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10] {
        let mut cfg = NemesisConfig::with_lmt(LmtSelect::ShmCopy);
        cfg.ring_chunk = chunk;
        println!("| {} | {:.0} |", size_label(chunk), tput(cfg, 512 << 10));
    }

    println!("\n### Ablation: eager→rendezvous threshold (default LMT, 96 KiB message)\n");
    println!("| eager_max | MiB/s |");
    println!("|---|---|");
    for eager in [16 << 10, 32 << 10, 64 << 10, 128 << 10] {
        let mut cfg = NemesisConfig::with_lmt(LmtSelect::ShmCopy);
        cfg.eager_max = eager;
        println!("| {} | {:.0} |", size_label(eager), tput(cfg, 96 << 10));
    }

    println!("\n### Ablation: eager cell payload (32 KiB eager message)\n");
    println!("| cell payload | MiB/s |");
    println!("|---|---|");
    for cell in [2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10] {
        let mut cfg = NemesisConfig::with_lmt(LmtSelect::ShmCopy);
        cfg.cell_payload = cell;
        println!("| {} | {:.0} |", size_label(cell), tput(cfg, 32 << 10));
    }

    println!("\n### Ablation (§6): collective-aware DMAmin hint, 8-rank Alltoall, KNEM auto\n");
    println!("| message | no hint (MiB/s) | with hint (MiB/s) |");
    println!("|---|---|---|");
    for size in [128u64 << 10, 256 << 10, 512 << 10] {
        let run = |hint: bool| {
            let mut cfg = NemesisConfig::with_lmt(LmtSelect::Knem(KnemSelect::Auto));
            cfg.eager_max = 8 << 10;
            cfg.collective_hint = hint;
            alltoall_bench(MachineConfig::xeon_e5345(), cfg, 8, size, 2, 1).agg_throughput_mib_s
        };
        println!(
            "| {} | {:.0} | {:.0} |",
            size_label(size),
            run(false),
            run(true)
        );
    }

    println!("\n### Ablation: I/OAT engine bandwidth (async I/OAT pingpong, 2 MiB, shared L2)\n");
    println!("| engine ps/line (≈ GiB/s) | I/OAT MiB/s | CPU-copy MiB/s |");
    println!("|---|---|---|");
    for per_line in [20_000u64, 10_000, 5_000] {
        let gib = 64.0 / (per_line as f64 / 1000.0); // 64 B per `per_line` ps
        let run = |sel: KnemSelect| {
            let mut mcfg = MachineConfig::xeon_e5345();
            mcfg.costs.ioat_per_line = per_line;
            pingpong_bench(
                mcfg,
                NemesisConfig::with_lmt(LmtSelect::Knem(sel)),
                Placement::SharedL2,
                2 << 20,
                4,
                2,
            )
            .throughput_mib_s
        };
        println!(
            "| {per_line} (≈{gib:.1}) | {:.0} | {:.0} |",
            run(KnemSelect::AsyncIoat),
            run(KnemSelect::SyncCpu)
        );
    }
}
