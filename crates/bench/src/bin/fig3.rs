//! Figure 3: IMB PingPong with the vmsplice LMT using vmsplice
//! (single-copy) or writev (two copies), vs the default LMT, with the
//! processes sharing a cache or placed on different dies.

use nemesis_bench::experiments::fig3_series;
use nemesis_bench::save_results;

fn main() {
    save_results(
        "fig3",
        "Figure 3: IMB Pingpong with the vmsplice LMT using vmsplice (single-copy) or writev (two copies)",
        "Throughput (MiB/s); the LMT is enabled when the message size passes 64 KiB",
        &fig3_series(),
    );
}
