//! Regenerate every table and figure of the paper in one run; results
//! land in `results/` (markdown + CSV). Expect several minutes.
//!
//! The extension studies (`numa_study`, `imb_suite`, `vector_ablation`,
//! `ablations`, `crossover_small`) have their own binaries and are *not*
//! run here, to keep this target's runtime within the paper's scope.

use nemesis_bench::experiments::*;
use nemesis_bench::{save_results, size_label};
use nemesis_sim::topology::Placement;
use nemesis_sim::MachineConfig;

fn main() {
    eprintln!("[1/8] Figure 3 ...");
    save_results(
        "fig3",
        "Figure 3: IMB Pingpong with the vmsplice LMT using vmsplice (single-copy) or writev (two copies)",
        "Throughput (MiB/s)",
        &fig3_series(),
    );
    eprintln!("[2/8] Figure 4 ...");
    save_results(
        "fig4",
        "Figure 4: IMB Pingpong throughput, 2 processes sharing a 4 MiB L2 cache",
        "Throughput (MiB/s)",
        &fig4_series(),
    );
    eprintln!("[3/8] Figure 5 ...");
    save_results(
        "fig5",
        "Figure 5: IMB Pingpong throughput, 2 processes not sharing any cache",
        "Throughput (MiB/s)",
        &fig5_series(),
    );
    eprintln!("[4/8] Figure 6 ...");
    save_results(
        "fig6",
        "Figure 6: KNEM synchronous vs asynchronous models",
        "Throughput (MiB/s)",
        &fig6_series(),
    );
    eprintln!("[5/8] Figure 7 ...");
    save_results(
        "fig7",
        "Figure 7: IMB Alltoall aggregated throughput between 8 local processes",
        "Aggregated throughput (MiB/s)",
        &fig7_series(),
    );
    eprintln!("[6/8] Table 1 (NAS sweep, slow) ...");
    {
        let mut md = String::from(
            "| NAS Kernel | default | vmsplice | KNEM copy | KNEM I/OAT | Speedup |\n|---|---|---|---|---|---|\n",
        );
        for row in table1_rows() {
            md.push_str(&format!(
                "| {} | {:.2} ms | {:.2} ms | {:.2} ms | {:.2} ms | {:+.1}% |\n",
                row.kernel,
                row.times_ms[0],
                row.times_ms[1],
                row.times_ms[2],
                row.times_ms[3],
                row.speedup_pct
            ));
        }
        println!("### Table 1\n\n{md}");
        let _ = std::fs::write("results/table1.md", md);
    }
    eprintln!("[7/8] Table 2 ...");
    {
        let mut md = String::from(
            "| Workload | default | vmsplice | KNEM copy | KNEM I/OAT |\n|---|---|---|---|---|\n",
        );
        for row in table2_rows() {
            md.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                row.workload, row.misses[0], row.misses[1], row.misses[2], row.misses[3]
            ));
        }
        println!("### Table 2\n\n{md}");
        let _ = std::fs::write("results/table2.md", md);
    }
    eprintln!("[8/8] §3.5 thresholds ...");
    {
        let mut md = String::from("| Host / placement | DMAmin | Measured |\n|---|---|---|\n");
        for (label, mcfg, pl, dm) in [
            (
                "E5345 shared L2",
                MachineConfig::xeon_e5345(),
                Placement::SharedL2,
                MachineConfig::xeon_e5345().dma_min_for_sharers(2),
            ),
            (
                "E5345 no shared cache",
                MachineConfig::xeon_e5345(),
                Placement::DifferentSocket,
                MachineConfig::xeon_e5345().dma_min_for_sharers(1),
            ),
            (
                "X5460 shared L2",
                MachineConfig::xeon_x5460(),
                Placement::SharedL2,
                MachineConfig::xeon_x5460().dma_min_for_sharers(2),
            ),
        ] {
            let measured = ioat_crossover(&mcfg, pl)
                .map(size_label)
                .unwrap_or_else(|| ">8MiB".into());
            md.push_str(&format!(
                "| {} | {} | {} |\n",
                label,
                size_label(dm),
                measured
            ));
        }
        println!("### Thresholds (3.5)\n\n{md}");
        let _ = std::fs::write("results/thresholds.md", md);
    }
    eprintln!("done; see results/");
}
