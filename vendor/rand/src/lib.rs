//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `RngExt` extension trait with
//! `random::<f64>()` and `random_range(a..b)` — built on SplitMix64.
//! Workloads only need deterministic, well-mixed streams (traces and NAS
//! key sets are compared run-to-run, never against external vectors), so
//! a small generator is sufficient. Swap back to the real crate when a
//! registry is available.

use std::ops::Range;

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from their full domain.
pub trait Standard: Sized {
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// Types usable as `random_range` endpoints.
pub trait UniformInt: Copy {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Object-safe generator core.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Extension methods (the `rand` 0.9 `Rng` surface this workspace uses).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from `[start, end)`. Uses Lemire-style widening
    /// rejection-free mapping; the tiny modulo bias is irrelevant for
    /// workload generation.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(hi > lo, "empty range");
        let span = hi - lo;
        let v = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + v)
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias so code written against `rand::Rng` also compiles.
pub use self::RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Passes into every
    /// `RngExt` method via the blanket impl.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush when used as a stream.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_low = false;
        for _ in 0..10_000 {
            let v: usize = rng.random_range(0..7usize);
            assert!(v < 7);
            seen_low |= v == 0;
        }
        assert!(seen_low, "distribution covers the low end");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
