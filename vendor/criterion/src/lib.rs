//! Offline stand-in for the `criterion` crate.
//!
//! The registry is unreachable in this build environment, so this
//! vendored crate implements the API subset the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`) as a small but real wall-clock
//! harness: per-sample timing with automatic batching for sub-microsecond
//! bodies, median-of-samples reporting, and derived throughput. It has
//! no statistical regression machinery; swap back to real criterion for
//! publication-quality numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units a benchmark's work is expressed in, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier of one parameterised benchmark instance.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Timing driver handed to the bench closure.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call, in
    /// nanoseconds (f64: one iteration of a trivial body is well below
    /// `Duration` resolution once batched).
    per_iter_ns: f64,
}

impl Bencher {
    /// Time `f`: batch until one sample takes ≥ 1 ms (so sub-µs bodies
    /// are measurable), collect `samples` samples, keep the median.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate the batch size.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch = (batch * 4).min(1 << 20);
        }
        let samples = 7usize;
        let mut times: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect();
        times.sort_by(f64::total_cmp);
        self.per_iter_ns = times[samples / 2];
    }
}

fn report(group: &str, label: &str, per_iter_ns: f64, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| {
        let secs = (per_iter_ns * 1e-9).max(1e-15);
        match t {
            Throughput::Bytes(b) => format!("  {:>10.1} MiB/s", b as f64 / secs / (1 << 20) as f64),
            Throughput::Elements(n) => format!("  {:>10.1} Melem/s", n as f64 / secs / 1e6),
        }
    });
    println!(
        "bench {group}/{label:<40} {:>12.3} µs/iter{}",
        per_iter_ns * 1e-3,
        rate.unwrap_or_default()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stand-in's sample count is
    /// fixed by `Bencher::iter`.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { per_iter_ns: 0.0 };
        f(&mut b);
        report(&self.name, &id.label, b.per_iter_ns, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher { per_iter_ns: 0.0 };
        f(&mut b, input);
        report(&self.name, &id.label, b.per_iter_ns, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { per_iter_ns: 0.0 };
        f(&mut b);
        report("top", name, b.per_iter_ns, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { per_iter_ns: 0.0 };
        b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(b.per_iter_ns > 0.0);
    }

    #[test]
    fn group_api_shape() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024)).sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 1), &1, |b, _| b.iter(|| 1 + 1));
        g.finish();
    }
}
