//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the (small) API subset the workspace uses — `Mutex`,
//! `MutexGuard`, `RwLock` and `Condvar` with parking_lot semantics (no
//! lock poisoning, `lock()` returns the guard directly) — implemented
//! over `std::sync`. Swap the workspace dependency back to the real
//! crate when a registry is available; no call site needs to change.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex that does not poison: panics while holding the lock leave the
/// data accessible, exactly like `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("mutex invariant"),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable pairing with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn no_poisoning_on_panic() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "data stays accessible after a panic");
    }
}
